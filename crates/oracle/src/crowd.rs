//! Simulated crowd workers and learned classifiers — Section 6.2.
//!
//! The paper's user study (Fig. 4) measures the accuracy of quadruplet
//! answers from Amazon Mechanical Turk as a function of the two compared
//! distances: near-coin-flip when both pairs are equally far apart, nearly
//! perfect once the ratio of distances exceeds a dataset-specific threshold
//! (≈1.45 for `caltech`), and persistently noisy at all ranges for `amazon`.
//! Each query was answered by three workers and decided by majority.
//!
//! [`AccuracyProfile`] captures exactly that accuracy-vs-ratio curve;
//! [`CrowdQuadOracle`] answers queries by majority over `workers` persistent
//! simulated annotators. With `workers = 1` it doubles as the actively
//! trained classifier the paper substitutes for the crowd at scale (the
//! classifier inherits the crowd's confusion behaviour, only noisier —
//! see [`AccuracyProfile::degraded`]).

use crate::persistent::{PersistentNoise, SharedComparisonOracle, SharedQuadrupletOracle};
use crate::{ComparisonOracle, QuadrupletOracle};
use nco_metric::hashing;
use nco_metric::Metric;

/// Accuracy of a single annotator as a function of the distance ratio
/// `rho = max(d1, d2) / min(d1, d2) >= 1`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccuracyProfile {
    /// Linear ramp from `tie_accuracy` at `rho = 1` up to `beyond_accuracy`
    /// at `rho = cliff_ratio`, constant afterwards. The shape observed for
    /// `caltech` / `cities` / `monuments` in Fig. 4(a).
    Cliff {
        /// Accuracy when the two distances are (nearly) equal.
        tie_accuracy: f64,
        /// Ratio at which the annotator becomes maximally reliable.
        cliff_ratio: f64,
        /// Accuracy beyond the cliff.
        beyond_accuracy: f64,
    },
    /// Constant accuracy at every ratio — the persistent-noise shape the
    /// paper reads off Fig. 4(b) for `amazon`.
    Flat {
        /// The constant per-query accuracy.
        accuracy: f64,
    },
}

impl AccuracyProfile {
    /// `caltech`-style profile: coin flip on ties, fully reliable past the
    /// ratio 1.45 observed in the paper's Fig. 4(a).
    pub fn caltech_like() -> Self {
        Self::Cliff {
            tie_accuracy: 0.5,
            cliff_ratio: 1.45,
            beyond_accuracy: 0.995,
        }
    }

    /// `cities`-style profile: a sharp cliff slightly further out.
    pub fn cities_like() -> Self {
        Self::Cliff {
            tie_accuracy: 0.55,
            cliff_ratio: 1.6,
            beyond_accuracy: 0.99,
        }
    }

    /// `monuments`-style profile: low noise everywhere (the paper observes
    /// all techniques do equally well there).
    pub fn monuments_like() -> Self {
        Self::Cliff {
            tie_accuracy: 0.65,
            cliff_ratio: 1.3,
            beyond_accuracy: 1.0,
        }
    }

    /// `amazon`-style profile: substantial noise across *all* distance
    /// ranges (Fig. 4(b)), i.e. the probabilistic model. Average accuracy
    /// ≈0.83 as reported in Section 6.2.1.
    pub fn amazon_like() -> Self {
        Self::Flat { accuracy: 0.83 }
    }

    /// Accuracy at distance ratio `rho` (callers should pass
    /// `max/min >= 1`; smaller values are clamped to a tie).
    pub fn accuracy(&self, rho: f64) -> f64 {
        match *self {
            Self::Flat { accuracy } => accuracy,
            Self::Cliff {
                tie_accuracy,
                cliff_ratio,
                beyond_accuracy,
            } => {
                if rho >= cliff_ratio {
                    beyond_accuracy
                } else if rho <= 1.0 {
                    tie_accuracy
                } else {
                    let t = (rho - 1.0) / (cliff_ratio - 1.0);
                    tie_accuracy + t * (beyond_accuracy - tie_accuracy)
                }
            }
        }
    }

    /// A uniformly degraded copy of this profile, modelling the
    /// active-learning classifier the paper trains on crowd answers ("the
    /// classifier generates noisier results", Section 6.3 footnote). Each
    /// accuracy `a` becomes `0.5 + (a - 0.5) * retention`.
    pub fn degraded(&self, retention: f64) -> Self {
        assert!((0.0..=1.0).contains(&retention));
        let shrink = |a: f64| 0.5 + (a - 0.5) * retention;
        match *self {
            Self::Flat { accuracy } => Self::Flat {
                accuracy: shrink(accuracy),
            },
            Self::Cliff {
                tie_accuracy,
                cliff_ratio,
                beyond_accuracy,
            } => Self::Cliff {
                tie_accuracy: shrink(tie_accuracy),
                cliff_ratio,
                beyond_accuracy: shrink(beyond_accuracy),
            },
        }
    }
}

/// A quadruplet oracle answered by a majority vote over `workers` persistent
/// simulated crowd annotators whose per-query accuracy follows an
/// [`AccuracyProfile`].
#[derive(Debug, Clone)]
pub struct CrowdQuadOracle<M> {
    metric: M,
    profile: AccuracyProfile,
    workers: u32,
    seed: u64,
}

impl<M: Metric> CrowdQuadOracle<M> {
    /// Builds the oracle; the paper's user study uses `workers = 3`.
    ///
    /// # Panics
    /// Panics if `workers` is even or zero (majority must be decisive).
    pub fn new(metric: M, profile: AccuracyProfile, workers: u32, seed: u64) -> Self {
        assert!(
            workers % 2 == 1,
            "need an odd number of workers, got {workers}"
        );
        Self {
            metric,
            profile,
            workers,
            seed,
        }
    }

    /// Single-annotator variant used to model the trained classifier.
    pub fn classifier(metric: M, profile: AccuracyProfile, seed: u64) -> Self {
        Self::new(metric, profile, 1, seed)
    }

    /// The accuracy profile in use.
    pub fn profile(&self) -> &AccuracyProfile {
        &self.profile
    }

    /// The hidden metric (evaluation only).
    pub fn metric(&self) -> &M {
        &self.metric
    }
}

impl<M: Metric> QuadrupletOracle for CrowdQuadOracle<M> {
    fn n(&self) -> usize {
        self.metric.len()
    }

    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        self.answer(a, b, c, d)
    }

    /// Batched committee round: worker draws are simulated across the
    /// whole batch in serial query order — each answer is a pure function
    /// of its canonical query, so the transcript is bit-identical to the
    /// scalar loop — while the round's distance work is amortised: each
    /// **distinct record pair**'s distance is evaluated once per round
    /// (the paper's rounds re-touch the same few rep pairs many times —
    /// a Count-Max pool of `p` contestants asks `p(p-1)/2` queries over
    /// only `p` distinct pairs). Keys are packed pair indices hashed with
    /// the splitmix mixer, so a cache probe stays far below one lazy
    /// distance evaluation.
    fn le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<bool>) {
        use nco_metric::hashing::MixBuildHasher;
        use std::collections::HashMap;
        debug_assert!(self.metric.len() <= u32::MAX as usize, "packed pair keys");
        let mut dists: HashMap<u64, f64, MixBuildHasher> =
            HashMap::with_capacity_and_hasher(64, MixBuildHasher);
        let metric = &self.metric;
        let mut dist_of = |p: (usize, usize)| -> f64 {
            *dists
                .entry(((p.0 as u64) << 32) | p.1 as u64)
                .or_insert_with(|| metric.dist(p.0, p.1))
        };
        out.reserve(queries.len());
        for &[a, b, c, d] in queries {
            let Some((q1, q2, swapped)) = Self::canonical(a, b, c, d) else {
                out.push(true);
                continue;
            };
            let d1 = dist_of(q1);
            let d2 = dist_of(q2);
            let ans = decide(&self.profile, self.workers, self.seed, q1, q2, d1, d2);
            out.push(ans ^ swapped);
        }
    }
}

impl<M: Metric + Sync> SharedQuadrupletOracle for CrowdQuadOracle<M> {
    fn le_shared(&self, a: usize, b: usize, c: usize, d: usize) -> bool {
        self.answer(a, b, c, d)
    }
}

/// Workers are seeded hashes of the canonical query — a pure function —
/// so the majority answer is persistent.
impl<M: Metric> PersistentNoise for CrowdQuadOracle<M> {}

impl<M: Metric> CrowdQuadOracle<M> {
    /// Canonicalises a query: ordered pairs, ordered pair-of-pairs, and
    /// whether the answer must be mirrored. `None` means the two pairs are
    /// identical (a truthful tie, answered `Yes`).
    #[inline]
    #[allow(clippy::type_complexity)]
    fn canonical(
        a: usize,
        b: usize,
        c: usize,
        d: usize,
    ) -> Option<((usize, usize), (usize, usize), bool)> {
        let p1 = if a <= b { (a, b) } else { (b, a) };
        let p2 = if c <= d { (c, d) } else { (d, c) };
        if p1 == p2 {
            return None;
        }
        let swapped = p1 > p2;
        let (q1, q2) = if swapped { (p2, p1) } else { (p1, p2) };
        Some((q1, q2, swapped))
    }

    fn answer(&self, a: usize, b: usize, c: usize, d: usize) -> bool {
        let Some((q1, q2, swapped)) = Self::canonical(a, b, c, d) else {
            return true;
        };
        let d1 = self.metric.dist(q1.0, q1.1);
        let d2 = self.metric.dist(q2.0, q2.1);
        decide(&self.profile, self.workers, self.seed, q1, q2, d1, d2) ^ swapped
    }
}

/// Majority vote of a `workers`-sized committee whose member `w` answers
/// correctly when `coin(w)` is `true`. Worker coins are independent
/// seeded hashes, so the vote may stop as soon as either side reaches a
/// majority — the outcome is identical to polling every worker. Shared
/// by the quadruplet and value committees so their vote semantics can
/// never drift apart.
fn majority_correct(workers: u32, mut coin: impl FnMut(u32) -> bool) -> bool {
    let majority = workers / 2 + 1;
    let mut correct_votes = 0u32;
    let mut wrong_votes = 0u32;
    for w in 0..workers {
        if coin(w) {
            correct_votes += 1;
            if correct_votes == majority {
                break;
            }
        } else {
            wrong_votes += 1;
            if wrong_votes == majority {
                break;
            }
        }
    }
    correct_votes >= majority
}

/// Majority decision of one committee over a canonical query: `true`
/// encodes `Yes` ("`d1 <= d2`").
fn decide(
    profile: &AccuracyProfile,
    workers: u32,
    seed: u64,
    q1: (usize, usize),
    q2: (usize, usize),
    d1: f64,
    d2: f64,
) -> bool {
    let truth = d1 <= d2;
    let rho = if d1.min(d2) <= 0.0 {
        f64::INFINITY
    } else {
        d1.max(d2) / d1.min(d2)
    };
    let acc = profile.accuracy(rho);
    truth
        == majority_correct(workers, |w| {
            hashing::bernoulli(
                seed,
                &[w as u64, q1.0 as u64, q1.1 as u64, q2.0 as u64, q2.1 as u64],
                acc,
            )
        })
}

/// A comparison oracle answered by the same simulated crowd: worker
/// accuracy is a function of the ratio between the two compared hidden
/// *values*, majority over `workers` persistent annotators.
///
/// The paper's crowd experiments are all quadruplet-based; this value
/// twin exists so the facade's `Session` can run maximum / top-k tasks
/// under the crowd noise model with the exact same worker simulation.
#[derive(Debug, Clone)]
pub struct CrowdValueOracle {
    values: Vec<f64>,
    profile: AccuracyProfile,
    workers: u32,
    seed: u64,
}

impl CrowdValueOracle {
    /// Builds the oracle; the paper's user study uses `workers = 3`.
    ///
    /// # Panics
    /// Panics if `workers` is even or zero, or any value is negative or
    /// non-finite (the accuracy curve needs magnitude ratios).
    pub fn new(values: Vec<f64>, profile: AccuracyProfile, workers: u32, seed: u64) -> Self {
        assert!(
            workers % 2 == 1,
            "need an odd number of workers, got {workers}"
        );
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "values must be non-negative and finite for the accuracy-ratio curve"
        );
        Self {
            values,
            profile,
            workers,
            seed,
        }
    }

    /// The accuracy profile in use.
    pub fn profile(&self) -> &AccuracyProfile {
        &self.profile
    }

    /// Ground-truth values (evaluation only).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Majority decision over the canonical pair `a < b` — the value twin
    /// of the quadruplet committee, through the same shared vote.
    fn decide(&self, a: usize, b: usize) -> bool {
        let (va, vb) = (self.values[a], self.values[b]);
        let truth = va <= vb;
        let (lo, hi) = if va <= vb { (va, vb) } else { (vb, va) };
        let rho = if lo <= 0.0 { f64::INFINITY } else { hi / lo };
        let acc = self.profile.accuracy(rho);
        truth
            == majority_correct(self.workers, |w| {
                hashing::bernoulli(self.seed, &[w as u64, a as u64, b as u64], acc)
            })
    }

    fn answer(&self, i: usize, j: usize) -> bool {
        if i == j {
            return true;
        }
        let swapped = i > j;
        let (a, b) = if swapped { (j, i) } else { (i, j) };
        self.decide(a, b) ^ swapped
    }
}

impl ComparisonOracle for CrowdValueOracle {
    fn n(&self) -> usize {
        self.values.len()
    }

    fn le(&mut self, i: usize, j: usize) -> bool {
        self.answer(i, j)
    }

    /// Batched committee round: each **distinct canonical pair**'s
    /// committee is simulated once per round and repeats are served from
    /// the round answer cache — answers are pure functions of the pair,
    /// so the transcript is bit-identical to the scalar loop in serial
    /// query order.
    fn le_batch(&mut self, queries: &[(usize, usize)], out: &mut Vec<bool>) {
        use nco_metric::hashing::MixBuildHasher;
        use std::collections::HashMap;
        debug_assert!(self.values.len() <= u32::MAX as usize, "packed pair keys");
        let mut answers: HashMap<u64, bool, MixBuildHasher> =
            HashMap::with_capacity_and_hasher(64, MixBuildHasher);
        out.reserve(queries.len());
        for &(i, j) in queries {
            if i == j {
                out.push(true);
                continue;
            }
            let swapped = i > j;
            let (a, b) = if swapped { (j, i) } else { (i, j) };
            let ans = *answers
                .entry(((a as u64) << 32) | b as u64)
                .or_insert_with(|| self.decide(a, b));
            out.push(ans ^ swapped);
        }
    }
}

impl SharedComparisonOracle for CrowdValueOracle {
    fn le_shared(&self, i: usize, j: usize) -> bool {
        self.answer(i, j)
    }
}

/// Workers are seeded hashes of the canonical query — a pure function —
/// so the majority answer is persistent.
impl PersistentNoise for CrowdValueOracle {}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::EuclideanMetric;

    #[test]
    fn cliff_profile_shape() {
        let p = AccuracyProfile::caltech_like();
        assert!((p.accuracy(1.0) - 0.5).abs() < 1e-12);
        assert!((p.accuracy(1.45) - 0.995).abs() < 1e-12);
        assert!((p.accuracy(10.0) - 0.995).abs() < 1e-12);
        let mid = p.accuracy(1.225);
        assert!(mid > 0.5 && mid < 0.995);
        assert_eq!(p.accuracy(0.5), 0.5); // clamped to tie
    }

    #[test]
    fn flat_profile_is_flat() {
        let p = AccuracyProfile::amazon_like();
        assert_eq!(p.accuracy(1.0), p.accuracy(100.0));
    }

    #[test]
    fn degraded_moves_toward_coin_flip() {
        let p = AccuracyProfile::caltech_like().degraded(0.8);
        match p {
            AccuracyProfile::Cliff {
                tie_accuracy,
                beyond_accuracy,
                ..
            } => {
                assert!((tie_accuracy - 0.5).abs() < 1e-12);
                assert!(beyond_accuracy < 0.995 && beyond_accuracy > 0.85);
            }
            _ => unreachable!(),
        }
    }

    fn line(n: usize) -> EuclideanMetric {
        EuclideanMetric::from_points(&(0..n).map(|i| vec![(i * i) as f64]).collect::<Vec<_>>())
    }

    #[test]
    fn crowd_is_persistent_and_complementary() {
        let mut o = CrowdQuadOracle::new(line(20), AccuracyProfile::amazon_like(), 3, 11);
        let a = o.le(0, 5, 2, 9);
        for _ in 0..5 {
            assert_eq!(o.le(0, 5, 2, 9), a);
            assert_eq!(o.le(5, 0, 9, 2), a);
            assert_eq!(o.le(2, 9, 0, 5), !a);
        }
    }

    #[test]
    fn majority_of_three_beats_single_worker() {
        // With flat accuracy 0.75, majority-of-3 accuracy is
        // 0.75^3 + 3 * 0.75^2 * 0.25 ≈ 0.844.
        let profile = AccuracyProfile::Flat { accuracy: 0.75 };
        let m = line(60);
        let mut single = CrowdQuadOracle::new(m.clone(), profile, 1, 42);
        let mut triple = CrowdQuadOracle::new(m.clone(), profile, 3, 42);
        let mut ok1 = 0usize;
        let mut ok3 = 0usize;
        let mut total = 0usize;
        for a in 0..59usize {
            for c in 0..59usize {
                let (b, d) = (a + 1, c + 1);
                if (a, b) >= (c, d) {
                    continue;
                }
                total += 1;
                let truth = m.dist(a, b) <= m.dist(c, d);
                ok1 += (single.le(a, b, c, d) == truth) as usize;
                ok3 += (triple.le(a, b, c, d) == truth) as usize;
            }
        }
        let acc1 = ok1 as f64 / total as f64;
        let acc3 = ok3 as f64 / total as f64;
        assert!((acc1 - 0.75).abs() < 0.03, "single accuracy {acc1}");
        assert!((acc3 - 0.844).abs() < 0.03, "majority accuracy {acc3}");
    }

    #[test]
    fn cliff_crowd_is_perfect_past_the_cliff() {
        let m = line(30);
        let mut o = CrowdQuadOracle::new(
            m.clone(),
            AccuracyProfile::Cliff {
                tie_accuracy: 0.5,
                cliff_ratio: 1.45,
                beyond_accuracy: 1.0,
            },
            3,
            7,
        );
        for a in 0..10usize {
            let (b, c, d) = (a + 1, a, a + 15);
            let (d1, d2) = (m.dist(a, b), m.dist(c, d));
            if d1.max(d2) / d1.min(d2) > 1.45 {
                assert_eq!(o.le(a, b, c, d), d1 <= d2);
            }
        }
    }

    #[test]
    #[should_panic(expected = "odd number of workers")]
    fn rejects_even_worker_count() {
        let _ = CrowdQuadOracle::new(line(3), AccuracyProfile::amazon_like(), 2, 0);
    }

    #[test]
    fn value_crowd_is_persistent_complementary_and_ratio_accurate() {
        let values: Vec<f64> = (1..=40).map(|i| (i * i) as f64).collect();
        let mut o = CrowdValueOracle::new(values.clone(), AccuracyProfile::caltech_like(), 3, 9);
        assert_eq!(o.n(), 40);
        let a = o.le(3, 17);
        for _ in 0..5 {
            assert_eq!(o.le(3, 17), a);
            assert_eq!(o.le(17, 3), !a);
            assert_eq!(o.le_shared(3, 17), a);
        }
        assert!(o.le(5, 5), "self-comparison is a truthful tie");
        // Past the accuracy cliff (ratio 1.45), caltech workers are near
        // perfect: well-separated values must be answered correctly.
        for i in 0..20usize {
            let j = i + 15;
            let rho = values[j] / values[i];
            if rho > 2.0 {
                assert!(o.le(i, j), "({i},{j}) rho = {rho}");
            }
        }
    }

    #[test]
    fn value_crowd_flat_profile_matches_accuracy() {
        let values: Vec<f64> = (1..=80).map(|i| i as f64).collect();
        let mut o = CrowdValueOracle::new(
            values.clone(),
            AccuracyProfile::Flat { accuracy: 0.8 },
            1,
            4,
        );
        let mut ok = 0usize;
        let mut total = 0usize;
        for i in 0..80usize {
            for j in (i + 1)..80usize {
                total += 1;
                ok += (o.le(i, j) == (values[i] <= values[j])) as usize;
            }
        }
        let acc = ok as f64 / total as f64;
        assert!((acc - 0.8).abs() < 0.03, "observed accuracy {acc}");
    }
}
