//! Budget-enforcing query metering — the counting layer behind the
//! facade's `Session` front door.
//!
//! [`Budgeted`] is [`crate::Counting`] with a hard cap: queries up to the
//! cap are forwarded (and billed) exactly like `Counting` would, so a run
//! that stays inside its budget is **bit-identical** — same answers, same
//! tally — to the unbudgeted run. The first query past the cap trips the
//! [`Budgeted::exceeded`] flag and, from then on, the inner oracle is
//! never touched again: every over-budget query is answered with a fixed
//! `true` without evaluating a distance or drawing a noise coin. Callers
//! (the facade's `Session::run`) check the flag after the algorithm
//! returns and surface `NcoError::BudgetExceeded` instead of the
//! (meaningless) answer — no panic, no unwinding through oracle state.
//!
//! [`SharedBudgeted`] is the atomic twin for oracles queried through
//! `&self` from parallel rounds (the counter-stream SLINK engine),
//! mirroring the [`Counting`](crate::Counting) /
//! [`SharedCounting`](crate::SharedCounting) split.

use crate::fault::QueryFault;
use crate::persistent::{PersistentNoise, SharedComparisonOracle, SharedQuadrupletOracle};
use crate::{ComparisonOracle, QuadrupletOracle};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

/// The fixed answer handed out once the budget is exhausted. Arbitrary by
/// design: a run that exceeds its budget is discarded, so the only
/// requirements are determinism and not touching the inner oracle.
/// Public so callers layering their own admission control (the facade's
/// serving plane) can hand out the identical refusal bit.
pub const OVER_BUDGET_ANSWER: bool = true;

/// Wraps any oracle with a query meter and a hard query budget.
///
/// Within budget it is indistinguishable from [`crate::Counting`]; past
/// the budget it stops consulting the inner oracle, answers a constant
/// bit, and records that the cap was crossed.
#[derive(Debug, Clone)]
pub struct Budgeted<O> {
    inner: O,
    cap: u64,
    count: u64,
    rounds: u64,
    exceeded: bool,
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    killed: bool,
}

impl<O> Budgeted<O> {
    /// Wraps an oracle; `cap = None` means unlimited (pure metering).
    pub fn new(inner: O, cap: Option<u64>) -> Self {
        Self {
            inner,
            cap: cap.unwrap_or(u64::MAX),
            count: 0,
            rounds: 0,
            exceeded: false,
            deadline: None,
            cancel: None,
            killed: false,
        }
    }

    /// Kills the run once the wall clock passes `deadline`: from the next
    /// query on, the inner oracle is never consulted again and every
    /// answer is the fixed [`OVER_BUDGET_ANSWER`] refusal bit — billed as
    /// nothing, so the partial meters stay honest. Callers check
    /// [`Budgeted::killed`] after the run, exactly like
    /// [`Budgeted::exceeded`].
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// Cooperative cancellation: the run is killed (same doomed-run
    /// discipline as [`Budgeted::with_deadline`]) as soon as `cancel`
    /// reads `true` at a query or round boundary.
    pub fn with_cancel(mut self, cancel: Option<Arc<AtomicBool>>) -> Self {
        self.cancel = cancel;
        self
    }

    /// `true` once the run was killed by its deadline or cancel token.
    pub fn killed(&self) -> bool {
        self.killed
    }

    /// Checks the kill sources; latches and reports `true` once killed.
    /// Free (two `None` tests) when neither source is configured, so runs
    /// without deadlines are untouched.
    #[inline]
    fn check_kill(&mut self) -> bool {
        if self.killed {
            return true;
        }
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                self.killed = true;
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.killed = true;
                return true;
            }
        }
        false
    }

    /// Queries actually issued to the inner oracle so far — equal to
    /// [`crate::Counting::queries`] for any run that stayed in budget,
    /// and capped at the budget otherwise.
    pub fn queries(&self) -> u64 {
        self.count.min(self.cap)
    }

    /// Batched rounds ([`ComparisonOracle::le_batch`] /
    /// [`QuadrupletOracle::le_batch`] calls) issued so far.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// `true` once any query has been refused for lack of budget.
    pub fn exceeded(&self) -> bool {
        self.exceeded
    }

    /// The configured cap (`u64::MAX` = unlimited).
    pub fn cap(&self) -> u64 {
        self.cap
    }

    /// Immutable access to the wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps the oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// Bills `k` queries; returns how many of them are within budget.
    #[inline]
    fn admit(&mut self, k: u64) -> u64 {
        let within = self.cap.saturating_sub(self.count.min(self.cap)).min(k);
        self.count = self.count.saturating_add(k);
        if within < k {
            self.exceeded = true;
        }
        within
    }
}

impl<O: ComparisonOracle> ComparisonOracle for Budgeted<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    #[inline]
    fn le(&mut self, i: usize, j: usize) -> bool {
        if self.check_kill() {
            return OVER_BUDGET_ANSWER;
        }
        if self.admit(1) == 1 {
            self.inner.le(i, j)
        } else {
            OVER_BUDGET_ANSWER
        }
    }

    fn le_batch(&mut self, queries: &[(usize, usize)], out: &mut Vec<bool>) {
        if self.check_kill() {
            out.extend(std::iter::repeat_n(OVER_BUDGET_ANSWER, queries.len()));
            return;
        }
        self.rounds += 1;
        let within = self.admit(queries.len() as u64) as usize;
        self.inner.le_batch(&queries[..within], out);
        out.extend(std::iter::repeat_n(
            OVER_BUDGET_ANSWER,
            queries.len() - within,
        ));
    }

    // The fallible path must meter exactly like the infallible one —
    // same kill check, same round tick, same cap split — so a no-fault
    // run through a recovery layer bills bit-identically to the legacy
    // stack. Kill and over-budget refusals answer `Ok(constant)` (never
    // `Err`): the run is already doomed for its own typed reason and a
    // retry layer must not burn attempts fighting them.
    fn try_le(&mut self, i: usize, j: usize) -> Result<bool, QueryFault> {
        if self.check_kill() {
            return Ok(OVER_BUDGET_ANSWER);
        }
        if self.admit(1) == 1 {
            self.inner.try_le(i, j)
        } else {
            Ok(OVER_BUDGET_ANSWER)
        }
    }

    fn try_le_batch(
        &mut self,
        queries: &[(usize, usize)],
        out: &mut Vec<Result<bool, QueryFault>>,
    ) {
        if self.check_kill() {
            out.extend(std::iter::repeat_n(Ok(OVER_BUDGET_ANSWER), queries.len()));
            return;
        }
        self.rounds += 1;
        let within = self.admit(queries.len() as u64) as usize;
        self.inner.try_le_batch(&queries[..within], out);
        out.extend(std::iter::repeat_n(
            Ok(OVER_BUDGET_ANSWER),
            queries.len() - within,
        ));
    }

    // Purely observational: a pending deadline/cancel only latches
    // `killed` at the next query boundary (`check_kill`), so an answer
    // observed while `doomed()` was still false really was a real answer.
    fn doomed(&self) -> bool {
        self.exceeded || self.killed || self.inner.doomed()
    }
}

impl<O: QuadrupletOracle> QuadrupletOracle for Budgeted<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    #[inline]
    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        if self.check_kill() {
            return OVER_BUDGET_ANSWER;
        }
        if self.admit(1) == 1 {
            self.inner.le(a, b, c, d)
        } else {
            OVER_BUDGET_ANSWER
        }
    }

    fn le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<bool>) {
        if self.check_kill() {
            out.extend(std::iter::repeat_n(OVER_BUDGET_ANSWER, queries.len()));
            return;
        }
        self.rounds += 1;
        let within = self.admit(queries.len() as u64) as usize;
        self.inner.le_batch(&queries[..within], out);
        out.extend(std::iter::repeat_n(
            OVER_BUDGET_ANSWER,
            queries.len() - within,
        ));
    }

    // See the comparison-side note: fallible metering mirrors infallible
    // metering bit-for-bit; kills and refusals are `Ok(constant)`.
    fn try_le(&mut self, a: usize, b: usize, c: usize, d: usize) -> Result<bool, QueryFault> {
        if self.check_kill() {
            return Ok(OVER_BUDGET_ANSWER);
        }
        if self.admit(1) == 1 {
            self.inner.try_le(a, b, c, d)
        } else {
            Ok(OVER_BUDGET_ANSWER)
        }
    }

    fn try_le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<Result<bool, QueryFault>>) {
        if self.check_kill() {
            out.extend(std::iter::repeat_n(Ok(OVER_BUDGET_ANSWER), queries.len()));
            return;
        }
        self.rounds += 1;
        let within = self.admit(queries.len() as u64) as usize;
        self.inner.try_le_batch(&queries[..within], out);
        out.extend(std::iter::repeat_n(
            Ok(OVER_BUDGET_ANSWER),
            queries.len() - within,
        ));
    }

    // See the comparison-side note: observational, latches at query
    // boundaries only.
    fn doomed(&self) -> bool {
        self.exceeded || self.killed || self.inner.doomed()
    }
}

/// Within budget, `Budgeted` is transparent, so it preserves the wrapped
/// oracle's persistence — which is what lets a [`crate::MemoOracle`] sit
/// *outside* the budget layer (hits are free; only real oracle queries
/// bill). Past the cap, the constant refusal answer can disagree with an
/// earlier in-budget answer to the same query, but every such run is
/// already doomed to be discarded as `BudgetExceeded`, so no memoised
/// post-cap bit ever reaches a caller.
impl<O: PersistentNoise> PersistentNoise for Budgeted<O> {}

/// Atomic twin of [`Budgeted`] for oracles queried through `&self` from
/// parallel rounds. Billing is additive and order-independent, so a
/// parallel run over the same query multiset reports exactly the serial
/// tally; which specific over-budget query first trips the flag may vary
/// across thread interleavings, but *whether* the cap is crossed — the
/// only bit `Session::run` acts on — cannot.
#[derive(Debug)]
pub struct SharedBudgeted<O> {
    inner: O,
    cap: u64,
    count: AtomicU64,
    rounds: AtomicU64,
    exceeded: AtomicBool,
    deadline: Option<Instant>,
    cancel: Option<Arc<AtomicBool>>,
    killed: AtomicBool,
}

impl<O> SharedBudgeted<O> {
    /// Wraps an oracle; `cap = None` means unlimited.
    pub fn new(inner: O, cap: Option<u64>) -> Self {
        Self {
            inner,
            cap: cap.unwrap_or(u64::MAX),
            count: AtomicU64::new(0),
            rounds: AtomicU64::new(0),
            exceeded: AtomicBool::new(false),
            deadline: None,
            cancel: None,
            killed: AtomicBool::new(false),
        }
    }

    /// See [`Budgeted::with_deadline`].
    pub fn with_deadline(mut self, deadline: Option<Instant>) -> Self {
        self.deadline = deadline;
        self
    }

    /// See [`Budgeted::with_cancel`].
    pub fn with_cancel(mut self, cancel: Option<Arc<AtomicBool>>) -> Self {
        self.cancel = cancel;
        self
    }

    /// `true` once the run was killed by its deadline or cancel token.
    pub fn killed(&self) -> bool {
        self.killed.load(Ordering::Relaxed)
    }

    /// Atomic twin of [`Budgeted`]'s kill check. Which thread's query
    /// first observes the kill may vary across interleavings, but —
    /// exactly as with the `exceeded` flag — only *whether* the run was
    /// killed reaches the caller.
    #[inline]
    fn check_kill(&self) -> bool {
        if self.killed.load(Ordering::Relaxed) {
            return true;
        }
        if let Some(cancel) = &self.cancel {
            if cancel.load(Ordering::Relaxed) {
                self.killed.store(true, Ordering::Relaxed);
                return true;
            }
        }
        if let Some(deadline) = self.deadline {
            if Instant::now() >= deadline {
                self.killed.store(true, Ordering::Relaxed);
                return true;
            }
        }
        false
    }

    /// Queries actually issued to the inner oracle (serial and shared
    /// paths combined), capped at the budget.
    pub fn queries(&self) -> u64 {
        self.count.load(Ordering::Relaxed).min(self.cap)
    }

    /// Batched rounds issued so far.
    pub fn rounds(&self) -> u64 {
        self.rounds.load(Ordering::Relaxed)
    }

    /// `true` once any query has been refused for lack of budget.
    pub fn exceeded(&self) -> bool {
        self.exceeded.load(Ordering::Relaxed)
    }

    /// Immutable access to the wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps the oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }

    /// Bills `k` queries; returns how many of them are within budget.
    #[inline]
    fn admit(&self, k: u64) -> u64 {
        let prior = self.count.fetch_add(k, Ordering::Relaxed);
        let within = self.cap.saturating_sub(prior.min(self.cap)).min(k);
        if within < k {
            self.exceeded.store(true, Ordering::Relaxed);
        }
        within
    }
}

impl<O: ComparisonOracle> ComparisonOracle for SharedBudgeted<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    #[inline]
    fn le(&mut self, i: usize, j: usize) -> bool {
        if self.check_kill() {
            return OVER_BUDGET_ANSWER;
        }
        if self.admit(1) == 1 {
            self.inner.le(i, j)
        } else {
            OVER_BUDGET_ANSWER
        }
    }

    fn le_batch(&mut self, queries: &[(usize, usize)], out: &mut Vec<bool>) {
        if self.check_kill() {
            out.extend(std::iter::repeat_n(OVER_BUDGET_ANSWER, queries.len()));
            return;
        }
        self.rounds.fetch_add(1, Ordering::Relaxed);
        let within = self.admit(queries.len() as u64) as usize;
        self.inner.le_batch(&queries[..within], out);
        out.extend(std::iter::repeat_n(
            OVER_BUDGET_ANSWER,
            queries.len() - within,
        ));
    }

    // Observational; see [`Budgeted`]'s note. Under parallel drivers the
    // flag may be observed one interleaving earlier or later, which only
    // makes a clean-progress watermark conservative.
    fn doomed(&self) -> bool {
        self.exceeded() || self.killed() || self.inner.doomed()
    }
}

impl<O: QuadrupletOracle> QuadrupletOracle for SharedBudgeted<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    #[inline]
    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        if self.check_kill() {
            return OVER_BUDGET_ANSWER;
        }
        if self.admit(1) == 1 {
            self.inner.le(a, b, c, d)
        } else {
            OVER_BUDGET_ANSWER
        }
    }

    fn le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<bool>) {
        if self.check_kill() {
            out.extend(std::iter::repeat_n(OVER_BUDGET_ANSWER, queries.len()));
            return;
        }
        self.rounds.fetch_add(1, Ordering::Relaxed);
        let within = self.admit(queries.len() as u64) as usize;
        self.inner.le_batch(&queries[..within], out);
        out.extend(std::iter::repeat_n(
            OVER_BUDGET_ANSWER,
            queries.len() - within,
        ));
    }

    // See the comparison-side note.
    fn doomed(&self) -> bool {
        self.exceeded() || self.killed() || self.inner.doomed()
    }
}

/// See the [`Budgeted`] persistence note: transparent within budget,
/// doomed-run-only divergence past it.
impl<O: PersistentNoise> PersistentNoise for SharedBudgeted<O> {}

impl<O: SharedComparisonOracle> SharedComparisonOracle for SharedBudgeted<O> {
    #[inline]
    fn le_shared(&self, i: usize, j: usize) -> bool {
        if self.check_kill() {
            return OVER_BUDGET_ANSWER;
        }
        if self.admit(1) == 1 {
            self.inner.le_shared(i, j)
        } else {
            OVER_BUDGET_ANSWER
        }
    }

    /// Bills the round a fan-out driver just completed through the
    /// per-query shared path — the shared-path twin of the `+1` that
    /// [`ComparisonOracle::le_batch`] applies, so fanned rounds and
    /// batched rounds meter identically.
    fn note_round(&self) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
        self.inner.note_round();
    }
}

impl<O: SharedQuadrupletOracle> SharedQuadrupletOracle for SharedBudgeted<O> {
    #[inline]
    fn le_shared(&self, a: usize, b: usize, c: usize, d: usize) -> bool {
        if self.check_kill() {
            return OVER_BUDGET_ANSWER;
        }
        if self.admit(1) == 1 {
            self.inner.le_shared(a, b, c, d)
        } else {
            OVER_BUDGET_ANSWER
        }
    }

    /// See the comparison-side `note_round`.
    fn note_round(&self) {
        self.rounds.fetch_add(1, Ordering::Relaxed);
        self.inner.note_round();
    }
}

/// A shared, all-or-nothing query-budget pool for concurrent admission
/// control.
///
/// Unlike [`SharedBudgeted`]'s internal `admit` — which bills first and splits a
/// partially-affordable batch at the cap (correct for a single doomed run
/// that will be discarded wholesale) — a serving plane admitting rounds
/// from *many* independent requests must never let one request's refusal
/// burn budget other requests could have used. `try_reserve` therefore
/// reserves a whole round's worth of queries atomically or not at all:
/// the pool's spend never exceeds its cap, and a refused round leaves the
/// pool exactly as it found it.
#[derive(Debug)]
pub struct BudgetPool {
    cap: u64,
    spent: AtomicU64,
    refused: AtomicBool,
}

impl BudgetPool {
    /// A pool with `cap` total queries; `None` means unlimited.
    pub fn new(cap: Option<u64>) -> Self {
        Self {
            cap: cap.unwrap_or(u64::MAX),
            spent: AtomicU64::new(0),
            refused: AtomicBool::new(false),
        }
    }

    /// The configured cap (`u64::MAX` = unlimited).
    pub fn cap(&self) -> u64 {
        self.cap
    }

    /// Queries reserved so far. Never exceeds [`BudgetPool::cap`].
    pub fn spent(&self) -> u64 {
        self.spent.load(Ordering::Relaxed)
    }

    /// Queries still available.
    pub fn remaining(&self) -> u64 {
        self.cap - self.spent()
    }

    /// `true` once any reservation has been refused.
    pub fn refused(&self) -> bool {
        self.refused.load(Ordering::Relaxed)
    }

    /// Atomically reserves `k` queries, or refuses without spending
    /// anything. A successful reservation is permanent — refunds would
    /// make admission order-dependent across thread interleavings.
    pub fn try_reserve(&self, k: u64) -> bool {
        let mut cur = self.spent.load(Ordering::Relaxed);
        loop {
            if k > self.cap - cur {
                self.refused.store(true, Ordering::Relaxed);
                return false;
            }
            match self.spent.compare_exchange_weak(
                cur,
                cur + k,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(seen) => cur = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counting::Counting;
    use crate::{TrueQuadOracle, TrueValueOracle};
    use nco_metric::EuclideanMetric;

    fn line(n: usize) -> EuclideanMetric {
        EuclideanMetric::from_points(&(0..n).map(|i| vec![i as f64]).collect::<Vec<_>>())
    }

    #[test]
    fn within_budget_matches_counting_bit_for_bit() {
        let values: Vec<f64> = (0..20).map(|i| ((i * 13) % 21) as f64).collect();
        let mut plain = Counting::new(TrueValueOracle::new(values.clone()));
        let mut capped = Budgeted::new(TrueValueOracle::new(values), Some(1_000));
        for i in 0..20 {
            for j in 0..20 {
                assert_eq!(capped.le(i, j), plain.le(i, j));
            }
        }
        assert_eq!(capped.queries(), plain.queries());
        assert!(!capped.exceeded());
        assert_eq!(capped.rounds(), 0);
    }

    #[test]
    fn cap_trips_exactly_at_the_boundary() {
        let mut o = Budgeted::new(TrueValueOracle::new(vec![1.0, 2.0, 3.0]), Some(2));
        assert!(o.le(0, 1));
        assert!(o.le(1, 2));
        assert!(
            !o.exceeded(),
            "cap not yet crossed after exactly cap queries"
        );
        assert_eq!(o.queries(), 2);
        // The third query is refused with the fixed bit, inner untouched.
        assert_eq!(o.le(2, 0), OVER_BUDGET_ANSWER);
        assert!(o.exceeded());
        assert_eq!(o.queries(), 2, "refused queries are not billed as issued");
    }

    #[test]
    fn batch_is_split_at_the_cap() {
        let m = line(4);
        let mut o = Budgeted::new(TrueQuadOracle::new(m.clone()), Some(2));
        let mut truth = TrueQuadOracle::new(m);
        let queries = [[0, 1, 0, 2], [0, 2, 0, 3], [0, 3, 0, 1], [1, 2, 1, 3]];
        let mut out = Vec::new();
        o.le_batch(&queries, &mut out);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0], truth.le(0, 1, 0, 2));
        assert_eq!(out[1], truth.le(0, 2, 0, 3));
        assert_eq!(out[2], OVER_BUDGET_ANSWER);
        assert_eq!(out[3], OVER_BUDGET_ANSWER);
        assert!(o.exceeded());
        assert_eq!(o.queries(), 2);
        assert_eq!(o.rounds(), 1);
    }

    #[test]
    fn unlimited_never_trips() {
        let mut o = Budgeted::new(TrueValueOracle::new(vec![1.0, 2.0]), None);
        for _ in 0..10_000 {
            let _ = o.le(0, 1);
        }
        assert!(!o.exceeded());
        assert_eq!(o.queries(), 10_000);
        assert_eq!(o.cap(), u64::MAX);
        assert_eq!(o.inner().n(), 2);
        assert_eq!(o.into_inner().n(), 2);
    }

    #[test]
    fn note_round_bills_like_a_batch() {
        use crate::persistent::SharedQuadrupletOracle;
        let m = line(4);
        let o = SharedBudgeted::new(TrueQuadOracle::new(m), None);
        // A fanned round: three shared queries, then the round note.
        let _ = o.le_shared(0, 1, 0, 2);
        let _ = o.le_shared(0, 2, 0, 3);
        let _ = o.le_shared(0, 3, 0, 1);
        o.note_round();
        assert_eq!(o.queries(), 3);
        assert_eq!(o.rounds(), 1, "a fanned round bills exactly one round");
        o.note_round();
        assert_eq!(o.rounds(), 2);
    }

    #[test]
    fn budget_pool_is_all_or_nothing() {
        let pool = BudgetPool::new(Some(10));
        assert_eq!(pool.cap(), 10);
        assert!(pool.try_reserve(4));
        assert!(pool.try_reserve(6));
        assert_eq!(pool.spent(), 10);
        assert_eq!(pool.remaining(), 0);
        assert!(!pool.refused());
        // A reservation the pool cannot fully cover spends nothing.
        assert!(!pool.try_reserve(1));
        assert!(pool.refused());
        assert_eq!(pool.spent(), 10);
        // Zero-sized reservations still succeed on an exhausted pool.
        assert!(pool.try_reserve(0));
    }

    #[test]
    fn budget_pool_unlimited_never_refuses() {
        let pool = BudgetPool::new(None);
        assert!(pool.try_reserve(u64::MAX - 1));
        assert!(pool.try_reserve(1));
        assert!(!pool.refused());
        assert_eq!(pool.remaining(), 0);
    }

    #[test]
    fn expired_deadline_kills_without_billing() {
        let mut o = Budgeted::new(TrueValueOracle::new(vec![1.0, 2.0, 3.0]), Some(100))
            .with_deadline(Some(Instant::now()));
        assert_eq!(o.le(0, 1), OVER_BUDGET_ANSWER);
        let mut out = Vec::new();
        o.le_batch(&[(0, 1), (1, 2)], &mut out);
        assert_eq!(out, vec![OVER_BUDGET_ANSWER; 2]);
        assert!(o.killed());
        assert!(!o.exceeded());
        assert_eq!(o.queries(), 0, "killed queries are never billed");
        assert_eq!(o.rounds(), 0);
        let mut fallible = Vec::new();
        o.try_le_batch(&[(0, 1)], &mut fallible);
        assert_eq!(fallible, vec![Ok(OVER_BUDGET_ANSWER)]);
    }

    #[test]
    fn cancel_token_kills_mid_run() {
        let cancel = Arc::new(AtomicBool::new(false));
        let mut o = Budgeted::new(TrueValueOracle::new(vec![1.0, 2.0, 3.0]), None)
            .with_cancel(Some(cancel.clone()));
        assert!(o.le(0, 1));
        assert_eq!(o.queries(), 1);
        cancel.store(true, Ordering::Relaxed);
        assert_eq!(o.le(1, 2), OVER_BUDGET_ANSWER);
        assert!(o.killed());
        assert_eq!(o.queries(), 1, "spend stops at the kill point");
    }

    #[test]
    fn shared_budgeted_kill_covers_the_shared_path() {
        use crate::persistent::SharedQuadrupletOracle;
        let cancel = Arc::new(AtomicBool::new(true));
        let o = SharedBudgeted::new(TrueQuadOracle::new(line(4)), None).with_cancel(Some(cancel));
        assert_eq!(o.le_shared(0, 1, 0, 2), OVER_BUDGET_ANSWER);
        assert!(o.killed());
        assert_eq!(o.queries(), 0);
    }

    #[test]
    fn fallible_path_meters_exactly_like_infallible() {
        let m = line(6);
        let mut plain = Budgeted::new(TrueQuadOracle::new(m.clone()), Some(5));
        let mut fallible = Budgeted::new(TrueQuadOracle::new(m), Some(5));
        let queries = [
            [0usize, 1, 0, 2],
            [0, 2, 0, 3],
            [1, 3, 2, 4],
            [0, 4, 0, 5],
            [1, 5, 2, 3],
            [2, 5, 0, 1],
        ];
        let mut a = Vec::new();
        plain.le_batch(&queries, &mut a);
        a.push(plain.le(0, 1, 0, 2));
        let mut b = Vec::new();
        fallible.try_le_batch(&queries, &mut b);
        let mut b: Vec<bool> = b.into_iter().map(|r| r.unwrap()).collect();
        b.push(fallible.try_le(0, 1, 0, 2).unwrap());
        assert_eq!(a, b, "over-budget lanes answer the same constant");
        assert_eq!(plain.queries(), fallible.queries());
        assert_eq!(plain.rounds(), fallible.rounds());
        assert_eq!(plain.exceeded(), fallible.exceeded());
    }

    #[test]
    fn shared_budgeted_mirrors_serial_semantics() {
        let m = line(5);
        let mut o = SharedBudgeted::new(TrueQuadOracle::new(m.clone()), Some(3));
        let mut truth = TrueQuadOracle::new(m);
        assert_eq!(o.le(0, 1, 0, 2), truth.le(0, 1, 0, 2));
        assert_eq!(o.le_shared(0, 2, 0, 3), truth.le(0, 2, 0, 3));
        let mut out = Vec::new();
        o.le_batch(&[[0, 3, 0, 4], [0, 4, 0, 1]], &mut out);
        assert_eq!(out[0], truth.le(0, 3, 0, 4));
        assert_eq!(out[1], OVER_BUDGET_ANSWER);
        assert!(o.exceeded());
        assert_eq!(o.queries(), 3);
        assert_eq!(o.rounds(), 1);
        assert_eq!(o.inner().n(), 5);
        assert_eq!(o.into_inner().n(), 5);
    }
}
