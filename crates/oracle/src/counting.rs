//! Query metering — every reported query complexity flows through here.
//!
//! [`Counting`] is the single-threaded meter; [`SharedCounting`] is its
//! atomic twin for oracles queried through `&self` from parallel rounds
//! (query counts are additive and order-independent, so a parallel run
//! over the same query multiset reports exactly the serial total).

use crate::fault::QueryFault;
use crate::persistent::{PersistentNoise, SharedComparisonOracle, SharedQuadrupletOracle};
use crate::{ComparisonOracle, QuadrupletOracle};
use std::sync::atomic::{AtomicU64, Ordering};

/// Wraps any oracle and counts the queries issued through it.
///
/// The paper's central cost measure is *query complexity* (each oracle call
/// is a human/classifier invocation); wrap the oracle once and read
/// [`Counting::queries`] after an algorithm finishes.
#[derive(Debug, Clone)]
pub struct Counting<O> {
    inner: O,
    count: u64,
}

impl<O> Counting<O> {
    /// Wraps an oracle with a zeroed counter.
    pub fn new(inner: O) -> Self {
        Self { inner, count: 0 }
    }

    /// Queries issued so far.
    pub fn queries(&self) -> u64 {
        self.count
    }

    /// Resets the counter (e.g. between experiment repetitions).
    pub fn reset(&mut self) {
        self.count = 0;
    }

    /// Immutable access to the wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Mutable access to the wrapped oracle (does not count as a query).
    pub fn inner_mut(&mut self) -> &mut O {
        &mut self.inner
    }

    /// Unwraps the oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

/// Counting is transparent: it forwards queries unchanged, so it
/// preserves the wrapped oracle's persistence.
impl<O: PersistentNoise> PersistentNoise for Counting<O> {}

impl<O: ComparisonOracle> ComparisonOracle for Counting<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    #[inline]
    fn le(&mut self, i: usize, j: usize) -> bool {
        self.count += 1;
        self.inner.le(i, j)
    }

    fn le_batch(&mut self, queries: &[(usize, usize)], out: &mut Vec<bool>) {
        // A batch of k queries is k queries — same bill as the scalar loop.
        self.count += queries.len() as u64;
        self.inner.le_batch(queries, out);
    }

    // A faulted ask still bills: the worker was asked, whether or not a
    // usable answer came back — which is what makes retry accounting
    // honest (every re-ask shows up in the meter).
    fn try_le(&mut self, i: usize, j: usize) -> Result<bool, QueryFault> {
        self.count += 1;
        self.inner.try_le(i, j)
    }

    fn try_le_batch(
        &mut self,
        queries: &[(usize, usize)],
        out: &mut Vec<Result<bool, QueryFault>>,
    ) {
        self.count += queries.len() as u64;
        self.inner.try_le_batch(queries, out);
    }

    fn doomed(&self) -> bool {
        self.inner.doomed()
    }
}

impl<O: QuadrupletOracle> QuadrupletOracle for Counting<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        self.count += 1;
        self.inner.le(a, b, c, d)
    }

    fn le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<bool>) {
        self.count += queries.len() as u64;
        self.inner.le_batch(queries, out);
    }

    fn try_le(&mut self, a: usize, b: usize, c: usize, d: usize) -> Result<bool, QueryFault> {
        self.count += 1;
        self.inner.try_le(a, b, c, d)
    }

    fn try_le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<Result<bool, QueryFault>>) {
        self.count += queries.len() as u64;
        self.inner.try_le_batch(queries, out);
    }

    fn doomed(&self) -> bool {
        self.inner.doomed()
    }
}

/// Atomic twin of [`Counting`]: meters queries issued through the shared
/// (`&self`) interfaces as well, so parallel fan-outs can be billed.
#[derive(Debug)]
pub struct SharedCounting<O> {
    inner: O,
    count: AtomicU64,
}

impl<O> SharedCounting<O> {
    /// Wraps an oracle with a zeroed atomic counter.
    pub fn new(inner: O) -> Self {
        Self {
            inner,
            count: AtomicU64::new(0),
        }
    }

    /// Queries issued so far (serial and shared paths combined).
    pub fn queries(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Immutable access to the wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Unwraps the oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

impl<O: Clone> Clone for SharedCounting<O> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
            count: AtomicU64::new(self.count.load(Ordering::Relaxed)),
        }
    }
}

impl<O: PersistentNoise> PersistentNoise for SharedCounting<O> {}

impl<O: ComparisonOracle> ComparisonOracle for SharedCounting<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    #[inline]
    fn le(&mut self, i: usize, j: usize) -> bool {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.le(i, j)
    }

    fn le_batch(&mut self, queries: &[(usize, usize)], out: &mut Vec<bool>) {
        self.count
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        self.inner.le_batch(queries, out);
    }

    fn try_le(&mut self, i: usize, j: usize) -> Result<bool, QueryFault> {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.try_le(i, j)
    }

    fn try_le_batch(
        &mut self,
        queries: &[(usize, usize)],
        out: &mut Vec<Result<bool, QueryFault>>,
    ) {
        self.count
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        self.inner.try_le_batch(queries, out);
    }

    fn doomed(&self) -> bool {
        self.inner.doomed()
    }
}

impl<O: QuadrupletOracle> QuadrupletOracle for SharedCounting<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.le(a, b, c, d)
    }

    fn le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<bool>) {
        self.count
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        self.inner.le_batch(queries, out);
    }

    fn try_le(&mut self, a: usize, b: usize, c: usize, d: usize) -> Result<bool, QueryFault> {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.try_le(a, b, c, d)
    }

    fn try_le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<Result<bool, QueryFault>>) {
        self.count
            .fetch_add(queries.len() as u64, Ordering::Relaxed);
        self.inner.try_le_batch(queries, out);
    }

    fn doomed(&self) -> bool {
        self.inner.doomed()
    }
}

impl<O: SharedComparisonOracle> SharedComparisonOracle for SharedCounting<O> {
    #[inline]
    fn le_shared(&self, i: usize, j: usize) -> bool {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.le_shared(i, j)
    }

    fn note_round(&self) {
        self.inner.note_round()
    }
}

impl<O: SharedQuadrupletOracle> SharedQuadrupletOracle for SharedCounting<O> {
    #[inline]
    fn le_shared(&self, a: usize, b: usize, c: usize, d: usize) -> bool {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.inner.le_shared(a, b, c, d)
    }

    fn note_round(&self) {
        self.inner.note_round()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TrueQuadOracle, TrueValueOracle};
    use nco_metric::EuclideanMetric;

    #[test]
    fn counts_comparison_queries() {
        let mut o = Counting::new(TrueValueOracle::new(vec![1.0, 2.0, 3.0]));
        assert_eq!(o.queries(), 0);
        let _ = o.le(0, 1);
        let _ = o.le(1, 2);
        assert_eq!(o.queries(), 2);
        o.reset();
        assert_eq!(o.queries(), 0);
        assert_eq!(o.n(), 3);
    }

    #[test]
    fn counts_quadruplet_queries_and_unwraps() {
        let m = EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![2.0]]);
        let mut o = Counting::new(TrueQuadOracle::new(m));
        let _ = o.le(0, 1, 0, 2);
        assert_eq!(o.queries(), 1);
        assert_eq!(o.inner().n(), 3);
        let inner = o.into_inner();
        assert_eq!(inner.n(), 3);
    }

    #[test]
    fn batch_is_billed_per_query() {
        let m = EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![2.0]]);
        let mut o = Counting::new(TrueQuadOracle::new(m));
        let mut out = Vec::new();
        o.le_batch(&[[0, 1, 0, 2], [0, 2, 1, 2], [1, 2, 0, 1]], &mut out);
        assert_eq!(o.queries(), 3);
        assert_eq!(out, vec![true, false, true]);
    }

    #[test]
    fn shared_counting_meters_both_paths() {
        use crate::persistent::SharedQuadrupletOracle;
        let m = EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![2.0]]);
        let mut o = SharedCounting::new(TrueQuadOracle::new(m));
        let _ = o.le(0, 1, 0, 2);
        let _ = o.le_shared(0, 1, 0, 2);
        let mut out = Vec::new();
        o.le_batch(&[[0, 1, 0, 2], [0, 2, 1, 2]], &mut out);
        assert_eq!(o.queries(), 4);
        assert_eq!(o.inner().n(), 3);
        assert_eq!(o.clone().queries(), 4);
        assert_eq!(o.into_inner().n(), 3);
    }
}
