//! Query metering — every reported query complexity flows through here.

use crate::persistent::PersistentNoise;
use crate::{ComparisonOracle, QuadrupletOracle};

/// Wraps any oracle and counts the queries issued through it.
///
/// The paper's central cost measure is *query complexity* (each oracle call
/// is a human/classifier invocation); wrap the oracle once and read
/// [`Counting::queries`] after an algorithm finishes.
#[derive(Debug, Clone)]
pub struct Counting<O> {
    inner: O,
    count: u64,
}

impl<O> Counting<O> {
    /// Wraps an oracle with a zeroed counter.
    pub fn new(inner: O) -> Self {
        Self { inner, count: 0 }
    }

    /// Queries issued so far.
    pub fn queries(&self) -> u64 {
        self.count
    }

    /// Resets the counter (e.g. between experiment repetitions).
    pub fn reset(&mut self) {
        self.count = 0;
    }

    /// Immutable access to the wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// Mutable access to the wrapped oracle (does not count as a query).
    pub fn inner_mut(&mut self) -> &mut O {
        &mut self.inner
    }

    /// Unwraps the oracle.
    pub fn into_inner(self) -> O {
        self.inner
    }
}

/// Counting is transparent: it forwards queries unchanged, so it
/// preserves the wrapped oracle's persistence.
impl<O: PersistentNoise> PersistentNoise for Counting<O> {}

impl<O: ComparisonOracle> ComparisonOracle for Counting<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    #[inline]
    fn le(&mut self, i: usize, j: usize) -> bool {
        self.count += 1;
        self.inner.le(i, j)
    }
}

impl<O: QuadrupletOracle> QuadrupletOracle for Counting<O> {
    fn n(&self) -> usize {
        self.inner.n()
    }

    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        self.count += 1;
        self.inner.le(a, b, c, d)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TrueQuadOracle, TrueValueOracle};
    use nco_metric::EuclideanMetric;

    #[test]
    fn counts_comparison_queries() {
        let mut o = Counting::new(TrueValueOracle::new(vec![1.0, 2.0, 3.0]));
        assert_eq!(o.queries(), 0);
        let _ = o.le(0, 1);
        let _ = o.le(1, 2);
        assert_eq!(o.queries(), 2);
        o.reset();
        assert_eq!(o.queries(), 0);
        assert_eq!(o.n(), 3);
    }

    #[test]
    fn counts_quadruplet_queries_and_unwraps() {
        let m = EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![2.0]]);
        let mut o = Counting::new(TrueQuadOracle::new(m));
        let _ = o.le(0, 1, 0, 2);
        assert_eq!(o.queries(), 1);
        assert_eq!(o.inner().n(), 3);
        let inner = o.into_inner();
        assert_eq!(inner.n(), 3);
    }
}
