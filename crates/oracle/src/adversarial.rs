//! Adversarial (multiplicative-band) noise model — Section 2.2.
//!
//! A query comparing quantities `x` and `y` is answered **correctly** when
//! the values are well separated (`x < y/(1+mu)` or `x > (1+mu)·y`), and
//! **adversarially** when they fall inside the multiplicative band
//! `1/(1+mu) <= x/y <= 1+mu`. The paper allows the adversary to remember all
//! previous queries and coordinate its lies; we model that with the
//! [`Adversary`] strategy trait, whose implementations range from the
//! worst-case liar ([`InvertAdversary`]) that every approximation bound must
//! survive, to more realistic systematically-biased comparators
//! ([`ConsistentAdversary`]).

use crate::persistent::{PersistentNoise, SharedComparisonOracle, SharedQuadrupletOracle};
use crate::{ComparisonOracle, QuadrupletOracle};
use nco_metric::hashing;
use nco_metric::Metric;

/// Is `x/y` inside the multiplicative `(1+mu)` noise band?
///
/// Edge cases: two zeros are a tie (in band); exactly one zero is an
/// unbounded ratio (out of band, the answer is unambiguous).
#[inline]
pub fn in_band(x: f64, y: f64, mu: f64) -> bool {
    debug_assert!(x >= 0.0 && y >= 0.0, "band test expects magnitudes");
    if x == 0.0 && y == 0.0 {
        return true;
    }
    if x == 0.0 || y == 0.0 {
        return false;
    }
    let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
    hi <= (1.0 + mu) * lo
}

/// How an in-band ("confusable") query gets answered.
///
/// `left_key` / `right_key` identify the two *operands* (a record index for
/// comparison oracles, a canonicalised record pair for quadruplet oracles),
/// so strategies can be persistent or target specific operands. `left` and
/// `right` are the true quantities being compared. Return `true` to answer
/// `Yes` ("left <= right").
pub trait Adversary {
    /// Decides an in-band query.
    fn decide(&mut self, left_key: &[u64], right_key: &[u64], left: f64, right: f64) -> bool;
}

/// An [`Adversary`] whose decisions are a pure function of the query — no
/// mutable strategy state — so it can decide through `&self` and its
/// oracle is persistent (memoisable, shareable across threads).
///
/// Every strategy shipped in this module qualifies; implementations must
/// keep `decide` and `decide_shared` identical, which the blanket
/// persistence of the wrapping oracles relies on.
pub trait SharedAdversary: Adversary + Sync {
    /// Same decision as [`Adversary::decide`], through a shared reference.
    fn decide_shared(&self, left_key: &[u64], right_key: &[u64], left: f64, right: f64) -> bool;
}

/// The worst-case liar: always answers in-band queries **incorrectly**.
///
/// This is the strategy behind the paper's lower-bound discussions (the
/// running-max failure in Section 3.1, Examples 3.2 / 3.8): every
/// approximation guarantee in the paper must hold against it.
#[derive(Debug, Clone, Copy, Default)]
pub struct InvertAdversary;

impl Adversary for InvertAdversary {
    fn decide(&mut self, l: &[u64], r: &[u64], left: f64, right: f64) -> bool {
        self.decide_shared(l, r, left, right)
    }
}

impl SharedAdversary for InvertAdversary {
    fn decide_shared(&self, _l: &[u64], _r: &[u64], left: f64, right: f64) -> bool {
        // Values are validated finite, so this is exactly !(left <= right).
        left > right
    }
}

/// Answers in-band queries with a persistent fair coin (hash of the query),
/// i.e. a sloppy-but-unbiased worker. Reversed queries get complementary
/// answers, like a persistent human would give.
#[derive(Debug, Clone, Copy)]
pub struct PersistentRandomAdversary {
    seed: u64,
}

impl PersistentRandomAdversary {
    /// Creates the strategy with a hash seed.
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }
}

impl Adversary for PersistentRandomAdversary {
    fn decide(&mut self, l: &[u64], r: &[u64], left: f64, right: f64) -> bool {
        self.decide_shared(l, r, left, right)
    }
}

impl SharedAdversary for PersistentRandomAdversary {
    fn decide_shared(&self, left_key: &[u64], right_key: &[u64], _l: f64, _r: f64) -> bool {
        let swapped = left_key > right_key;
        let (a, b) = if swapped {
            (right_key, left_key)
        } else {
            (left_key, right_key)
        };
        let mut words = Vec::with_capacity(a.len() + b.len());
        words.extend_from_slice(a);
        words.extend_from_slice(b);
        let ans = hashing::bernoulli(self.seed, &words, 0.5);
        ans ^ swapped
    }
}

/// A systematically biased comparator: each operand is distorted once by a
/// fixed hidden factor in `[1/(1+mu), 1+mu]`, and all queries are answered
/// truthfully *with respect to the distorted values*.
///
/// This is the most realistic adversary — a worker or embedding model with a
/// consistent misperception — and, unlike [`InvertAdversary`], it always
/// induces a valid total order, so it cannot be detected by consistency
/// checks.
#[derive(Debug, Clone, Copy)]
pub struct ConsistentAdversary {
    seed: u64,
    mu: f64,
}

impl ConsistentAdversary {
    /// Creates the strategy; `mu` should match the oracle's band so the
    /// distortion never causes an out-of-band lie.
    pub fn new(seed: u64, mu: f64) -> Self {
        assert!(mu >= 0.0 && mu.is_finite());
        Self { seed, mu }
    }

    fn factor(&self, key: &[u64]) -> f64 {
        // (1+mu)^(2u-1) for u ~ U[0,1): a fixed per-operand multiplicative
        // distortion spanning the entire band.
        let u = hashing::unit_from(self.seed ^ 0xc0a5_17e4_ad5e_11e5, key);
        (1.0 + self.mu).powf(2.0 * u - 1.0)
    }
}

impl Adversary for ConsistentAdversary {
    fn decide(&mut self, l: &[u64], r: &[u64], left: f64, right: f64) -> bool {
        self.decide_shared(l, r, left, right)
    }
}

impl SharedAdversary for ConsistentAdversary {
    fn decide_shared(&self, left_key: &[u64], right_key: &[u64], left: f64, right: f64) -> bool {
        left * self.factor(left_key) <= right * self.factor(right_key)
    }
}

/// Lobbies for one operand: whenever the target appears in an in-band query
/// it is declared the larger side; all other in-band queries are inverted.
///
/// Useful for failure injection: it is the strategy that realises the
/// `v_max/(1+mu)^{n-1}` running-max catastrophe of Section 3.1.
#[derive(Debug, Clone)]
pub struct PromoteTargetAdversary {
    target: Vec<u64>,
}

impl PromoteTargetAdversary {
    /// Promotes the record with the given index (comparison-oracle keys).
    pub fn record(i: usize) -> Self {
        Self {
            target: vec![i as u64],
        }
    }

    /// Promotes the (unordered) record pair (quadruplet-oracle keys).
    pub fn pair(a: usize, b: usize) -> Self {
        let (a, b) = if a <= b { (a, b) } else { (b, a) };
        Self {
            target: vec![a as u64, b as u64],
        }
    }
}

impl Adversary for PromoteTargetAdversary {
    fn decide(&mut self, l: &[u64], r: &[u64], left: f64, right: f64) -> bool {
        self.decide_shared(l, r, left, right)
    }
}

impl SharedAdversary for PromoteTargetAdversary {
    fn decide_shared(&self, left_key: &[u64], right_key: &[u64], left: f64, right: f64) -> bool {
        if left_key == self.target.as_slice() {
            false // target is "larger": left <= right is No
        } else if right_key == self.target.as_slice() {
            true
        } else {
            // Values are validated finite: exactly !(left <= right).
            left > right
        }
    }
}

/// Adversarial-noise comparison oracle over hidden values (Section 2.2).
#[derive(Debug, Clone)]
pub struct AdversarialValueOracle<A> {
    values: Vec<f64>,
    mu: f64,
    adversary: A,
}

impl<A: Adversary> AdversarialValueOracle<A> {
    /// Builds the oracle with error parameter `mu >= 0` and an in-band
    /// strategy.
    ///
    /// # Panics
    /// Panics if `mu` is negative/non-finite or any value is negative or
    /// non-finite (the multiplicative band needs magnitudes).
    pub fn new(values: Vec<f64>, mu: f64, adversary: A) -> Self {
        assert!(
            mu >= 0.0 && mu.is_finite(),
            "mu must be a non-negative constant"
        );
        assert!(
            values.iter().all(|v| v.is_finite() && *v >= 0.0),
            "values must be non-negative and finite for the multiplicative band"
        );
        Self {
            values,
            mu,
            adversary,
        }
    }

    /// The band parameter `mu`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Ground-truth values (evaluation only).
    pub fn values(&self) -> &[f64] {
        &self.values
    }
}

impl<A: Adversary> ComparisonOracle for AdversarialValueOracle<A> {
    fn n(&self) -> usize {
        self.values.len()
    }

    #[inline]
    fn le(&mut self, i: usize, j: usize) -> bool {
        let (vi, vj) = (self.values[i], self.values[j]);
        if !in_band(vi, vj, self.mu) {
            vi <= vj
        } else {
            self.adversary.decide(&[i as u64], &[j as u64], vi, vj)
        }
    }
}

impl<A: SharedAdversary> SharedComparisonOracle for AdversarialValueOracle<A>
where
    Self: Sync,
{
    #[inline]
    fn le_shared(&self, i: usize, j: usize) -> bool {
        let (vi, vj) = (self.values[i], self.values[j]);
        if !in_band(vi, vj, self.mu) {
            vi <= vj
        } else {
            self.adversary
                .decide_shared(&[i as u64], &[j as u64], vi, vj)
        }
    }
}

impl<A: SharedAdversary> PersistentNoise for AdversarialValueOracle<A> {}

/// Adversarial-noise quadruplet oracle over a hidden metric (Section 2.2).
#[derive(Debug, Clone)]
pub struct AdversarialQuadOracle<M, A> {
    metric: M,
    mu: f64,
    adversary: A,
}

impl<M: Metric, A: Adversary> AdversarialQuadOracle<M, A> {
    /// Builds the oracle with error parameter `mu >= 0` and an in-band
    /// strategy.
    pub fn new(metric: M, mu: f64, adversary: A) -> Self {
        assert!(
            mu >= 0.0 && mu.is_finite(),
            "mu must be a non-negative constant"
        );
        Self {
            metric,
            mu,
            adversary,
        }
    }

    /// The band parameter `mu`.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// The hidden metric (evaluation only).
    pub fn metric(&self) -> &M {
        &self.metric
    }
}

impl<M: Metric, A: Adversary> QuadrupletOracle for AdversarialQuadOracle<M, A> {
    fn n(&self) -> usize {
        self.metric.len()
    }

    #[inline]
    fn le(&mut self, a: usize, b: usize, c: usize, d: usize) -> bool {
        // Distances are read through the canonicalised pairs — exactly
        // what `le_batch`'s memo reads — so the two paths agree even for
        // a metric whose `dist(i, j)` were not bit-symmetric.
        let p1 = if a <= b { (a, b) } else { (b, a) };
        let p2 = if c <= d { (c, d) } else { (d, c) };
        let d1 = self.metric.dist(p1.0, p1.1);
        let d2 = self.metric.dist(p2.0, p2.1);
        if !in_band(d1, d2, self.mu) {
            d1 <= d2
        } else {
            let k1 = [p1.0 as u64, p1.1 as u64];
            let k2 = [p2.0 as u64, p2.1 as u64];
            self.adversary.decide(&k1, &k2, d1, d2)
        }
    }

    /// Batched round with a one-entry memo for the *second* pair: the
    /// dominant round shape (k-center committee scoring, Count-Max scans
    /// against a fixed pivot) repeats one pair across the whole round, so
    /// its distance is fetched once per run instead of once per query.
    /// Both this path and [`Self::le`] read distances through the
    /// canonicalised pairs, and the adversary is consulted with the same
    /// canonical keys in the same serial order — answers are identical to
    /// the scalar loop by construction, not by metric bit-symmetry.
    fn le_batch(&mut self, queries: &[[usize; 4]], out: &mut Vec<bool>) {
        out.reserve(queries.len());
        let mut memo: Option<((usize, usize), f64)> = None;
        for &[a, b, c, d] in queries {
            let p2 = if c <= d { (c, d) } else { (d, c) };
            let d2 = match memo {
                Some((p, v)) if p == p2 => v,
                _ => {
                    let v = self.metric.dist(p2.0, p2.1);
                    memo = Some((p2, v));
                    v
                }
            };
            let p1 = if a <= b { (a, b) } else { (b, a) };
            let d1 = self.metric.dist(p1.0, p1.1);
            let ans = if !in_band(d1, d2, self.mu) {
                d1 <= d2
            } else {
                let k1 = [p1.0 as u64, p1.1 as u64];
                let k2 = [p2.0 as u64, p2.1 as u64];
                self.adversary.decide(&k1, &k2, d1, d2)
            };
            out.push(ans);
        }
    }
}

impl<M: Metric, A: SharedAdversary> SharedQuadrupletOracle for AdversarialQuadOracle<M, A>
where
    Self: Sync,
{
    #[inline]
    fn le_shared(&self, a: usize, b: usize, c: usize, d: usize) -> bool {
        let p1 = if a <= b { (a, b) } else { (b, a) };
        let p2 = if c <= d { (c, d) } else { (d, c) };
        let d1 = self.metric.dist(p1.0, p1.1);
        let d2 = self.metric.dist(p2.0, p2.1);
        if !in_band(d1, d2, self.mu) {
            d1 <= d2
        } else {
            let k1 = [p1.0 as u64, p1.1 as u64];
            let k2 = [p2.0 as u64, p2.1 as u64];
            self.adversary.decide_shared(&k1, &k2, d1, d2)
        }
    }
}

impl<M: Metric, A: SharedAdversary> PersistentNoise for AdversarialQuadOracle<M, A> {}

#[cfg(test)]
mod tests {
    use super::*;
    use nco_metric::EuclideanMetric;

    #[test]
    fn band_membership() {
        assert!(in_band(1.0, 1.0, 0.0));
        assert!(in_band(1.0, 1.5, 0.5));
        assert!(in_band(1.5, 1.0, 0.5));
        assert!(!in_band(1.0, 1.51, 0.5));
        assert!(in_band(0.0, 0.0, 0.1));
        assert!(!in_band(0.0, 1e-300, 0.1));
    }

    #[test]
    fn out_of_band_is_always_correct() {
        let mut o = AdversarialValueOracle::new(vec![1.0, 10.0], 1.0, InvertAdversary);
        assert!(o.le(0, 1));
        assert!(!o.le(1, 0));
    }

    #[test]
    fn invert_lies_inside_the_band() {
        let mut o = AdversarialValueOracle::new(vec![1.0, 1.5], 1.0, InvertAdversary);
        assert!(!o.le(0, 1)); // truth is Yes, adversary says No
        assert!(o.le(1, 0)); // truth is No, adversary says Yes
    }

    #[test]
    fn promote_target_wins_all_in_band_duels() {
        let values = vec![1.0, 1.2, 1.4, 1.1];
        let mut o = AdversarialValueOracle::new(values, 1.0, PromoteTargetAdversary::record(0));
        for j in 1..4 {
            assert!(!o.le(0, j), "target must be declared larger than {j}");
            assert!(o.le(j, 0));
        }
    }

    #[test]
    fn persistent_random_is_persistent_and_complement_consistent() {
        let mut o =
            AdversarialValueOracle::new(vec![1.0, 1.2], 1.0, PersistentRandomAdversary::new(3));
        let a1 = o.le(0, 1);
        for _ in 0..10 {
            assert_eq!(o.le(0, 1), a1);
            assert_eq!(o.le(1, 0), !a1);
        }
    }

    #[test]
    fn consistent_adversary_induces_total_order() {
        let values: Vec<f64> = (0..20).map(|i| 1.0 + 0.02 * i as f64).collect();
        let n = values.len();
        let mut o = AdversarialValueOracle::new(values, 1.0, ConsistentAdversary::new(5, 1.0));
        // Transitivity over all in-band triples of the induced relation.
        let mut wins = vec![0usize; n];
        for (i, w) in wins.iter_mut().enumerate() {
            for j in 0..n {
                if i != j && !o.le(i, j) {
                    *w += 1;
                }
            }
        }
        let mut sorted = wins.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), n, "a total order has distinct win counts");
    }

    #[test]
    fn quad_oracle_band_and_truth() {
        let m = EuclideanMetric::from_points(&[vec![0.0], vec![1.0], vec![10.0]]);
        let mut o = AdversarialQuadOracle::new(m, 0.5, InvertAdversary);
        // d(0,1) = 1 vs d(0,2) = 10: far outside the band -> truthful.
        assert!(o.le(0, 1, 0, 2));
        // d(0,2) = 10 vs d(1,2) = 9: ratio 1.11 inside band -> inverted.
        assert!(o.le(0, 2, 1, 2));
    }

    // Seeded-loop replacement for the original proptest property (the
    // offline build has no proptest; 128 random cases, fixed seed).
    #[test]
    fn separated_values_always_answered_correctly() {
        use nco_metric::hashing::splitmix64;
        let mut gen_state = 0xAD5E_0001u64;
        let mut next = move || {
            gen_state = gen_state.wrapping_add(1);
            splitmix64(gen_state)
        };
        for _ in 0..128 {
            let len = 2 + (next() % 28) as usize;
            let v: Vec<f64> = (0..len)
                .map(|_| 0.01 + (next() >> 11) as f64 / (1u64 << 53) as f64 * 1e6)
                .collect();
            let mu = (next() >> 11) as f64 / (1u64 << 53) as f64 * 3.0;
            let seed = next();
            let mut o =
                AdversarialValueOracle::new(v.clone(), mu, PersistentRandomAdversary::new(seed));
            for i in 0..v.len() {
                for j in 0..v.len() {
                    if !in_band(v[i], v[j], mu) {
                        assert_eq!(o.le(i, j), v[i] <= v[j], "v={v:?} mu={mu} i={i} j={j}");
                    }
                }
            }
        }
    }
}
