//! Statistical conformance tests for the three noise models: the oracles
//! must flip comparisons at exactly the configured rate (probabilistic,
//! crowd) or within exactly the configured band (adversarial). All seeds
//! are fixed, so these run bit-identically every time; the tolerances are
//! the usual chi-square / z critical values at far-beyond-paranoid
//! significance so they also survive a reseeding.

use nco_metric::{EuclideanMetric, Metric};
use nco_oracle::adversarial::{
    in_band, AdversarialQuadOracle, AdversarialValueOracle, InvertAdversary,
    PersistentRandomAdversary,
};
use nco_oracle::crowd::{AccuracyProfile, CrowdQuadOracle};
use nco_oracle::probabilistic::{ProbQuadOracle, ProbValueOracle};
use nco_oracle::{ComparisonOracle, QuadrupletOracle};

/// Pearson chi-square statistic for per-block Binomial(m, p) flip counts.
fn chi_square_binomial(flips_per_block: &[(usize, usize)], p: f64) -> f64 {
    flips_per_block
        .iter()
        .map(|&(flips, m)| {
            let exp_flip = m as f64 * p;
            let exp_keep = m as f64 * (1.0 - p);
            let f = flips as f64;
            let k = (m - flips) as f64;
            (f - exp_flip).powi(2) / exp_flip + (k - exp_keep).powi(2) / exp_keep
        })
        .sum()
}

/// Flip indicator stream of the value oracle over all distinct pairs of a
/// strictly increasing instance, chunked into `blocks` equal blocks.
fn value_flip_blocks(p: f64, seed: u64, n: usize, blocks: usize) -> (Vec<(usize, usize)>, f64) {
    let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
    let mut oracle = ProbValueOracle::new(values.clone(), p, seed);
    let mut flips: Vec<bool> = Vec::new();
    for i in 0..n {
        for j in (i + 1)..n {
            flips.push(oracle.le(i, j) != (values[i] <= values[j]));
        }
    }
    let per = flips.len() / blocks;
    let blocks: Vec<(usize, usize)> = flips
        .chunks(per)
        .take(blocks)
        .map(|c| (c.iter().filter(|&&f| f).count(), c.len()))
        .collect();
    let total_flips: usize = blocks.iter().map(|b| b.0).sum();
    let total: usize = blocks.iter().map(|b| b.1).sum();
    (blocks, total_flips as f64 / total as f64)
}

/// The probabilistic value oracle flips at rate `p` — globally (z-test)
/// and uniformly across query blocks (chi-square, 16 blocks => df = 16,
/// critical value 39.25 at significance 1e-3).
#[test]
fn prob_value_oracle_flip_rate_is_p() {
    for &p in &[0.05, 0.15, 0.3, 0.45] {
        let (blocks, rate) = value_flip_blocks(p, 0x5747 + (p * 100.0) as u64, 300, 16);
        let m: usize = blocks.iter().map(|b| b.1).sum();
        let z = (rate - p).abs() / (p * (1.0 - p) / m as f64).sqrt();
        assert!(z < 4.0, "p = {p}: observed rate {rate} (z = {z:.2})");
        let chi2 = chi_square_binomial(&blocks, p);
        assert!(chi2 < 39.25, "p = {p}: chi-square {chi2:.1} over 16 blocks");
    }
}

/// Same conformance for the quadruplet oracle (flip coins are hashed from
/// canonicalised pairs, a different code path than the value oracle).
#[test]
fn prob_quad_oracle_flip_rate_is_p() {
    let n = 60usize;
    let m = EuclideanMetric::from_points(&(0..n).map(|i| vec![(i * i) as f64]).collect::<Vec<_>>());
    for &p in &[0.1, 0.25, 0.4] {
        let mut oracle = ProbQuadOracle::new(m.clone(), p, 0x05EE ^ (p * 64.0) as u64);
        let mut flips: Vec<bool> = Vec::new();
        for a in 0..n {
            for c in (a + 1)..n {
                let (b, d) = ((a + 7) % n, (c + 13) % n);
                let p1 = (a.min(b), a.max(b));
                let p2 = (c.min(d), c.max(d));
                if a == b || c == d || p1 == p2 {
                    continue;
                }
                let truth = m.dist(a, b) <= m.dist(c, d);
                flips.push(oracle.le(a, b, c, d) != truth);
            }
        }
        let total = flips.len();
        let rate = flips.iter().filter(|&&f| f).count() as f64 / total as f64;
        let z = (rate - p).abs() / (p * (1.0 - p) / total as f64).sqrt();
        assert!(
            z < 4.0,
            "p = {p}: observed quad flip rate {rate} (z = {z:.2}, {total} queries)"
        );
    }
}

/// Flat-profile crowd: a majority over 3 workers of accuracy `a` must be
/// correct with probability `a^3 + 3a^2(1-a)`, per accuracy level.
#[test]
fn crowd_majority_accuracy_matches_closed_form() {
    let n = 70usize;
    let m = EuclideanMetric::from_points(&(0..n).map(|i| vec![(i * i) as f64]).collect::<Vec<_>>());
    for &a in &[0.6, 0.75, 0.9] {
        let expected = a * a * a + 3.0 * a * a * (1.0 - a);
        let mut oracle = CrowdQuadOracle::new(
            m.clone(),
            AccuracyProfile::Flat { accuracy: a },
            3,
            0xC0FFEE,
        );
        let mut ok = 0usize;
        let mut total = 0usize;
        for x in 0..n {
            for c in (x + 1)..n {
                let (b, d) = ((x + 5) % n, (c + 11) % n);
                let p1 = (x.min(b), x.max(b));
                let p2 = (c.min(d), c.max(d));
                if x == b || c == d || p1 == p2 {
                    continue;
                }
                total += 1;
                let truth = m.dist(x, b) <= m.dist(c, d);
                ok += (oracle.le(x, b, c, d) == truth) as usize;
            }
        }
        let acc = ok as f64 / total as f64;
        let z = (acc - expected).abs() / (expected * (1.0 - expected) / total as f64).sqrt();
        assert!(
            z < 4.0,
            "accuracy {a}: majority accuracy {acc:.4} vs closed form {expected:.4} \
             (z = {z:.2}, {total} queries)"
        );
    }
}

/// Cliff-profile crowd: measured accuracy per distance-ratio bucket must
/// track the profile curve lifted through the majority-of-3 formula.
#[test]
fn crowd_cliff_accuracy_tracks_ratio_buckets() {
    let n = 80usize;
    // Geometric line: ratios between pair distances cover [1, inf) densely.
    let m = EuclideanMetric::from_points(
        &(0..n)
            .map(|i| vec![1.06f64.powi(i as i32)])
            .collect::<Vec<_>>(),
    );
    let profile = AccuracyProfile::caltech_like();
    let mut oracle = CrowdQuadOracle::new(m.clone(), profile, 3, 0xC11F);
    // Buckets over rho: [1, 1.15), [1.15, 1.45), [1.45, inf).
    let mut ok = [0usize; 3];
    let mut tot = [0usize; 3];
    let mut exp_sum = [0.0f64; 3];
    // Vary both pair positions and pair spans: on the geometric line the
    // distance ratio is `r^(x-c) * (r^s1 - 1) / (r^s2 - 1)`, so sweeping
    // spans 1..=6 fills every rho bucket, including near-ties.
    for s1 in 1..=6usize {
        for s2 in 1..=6usize {
            for x in 0..(n - s1) {
                let c = (x * 7 + s1 + 11 * s2) % (n - s2);
                let (b, d) = (x + s1, c + s2);
                let p1 = (x.min(b), x.max(b));
                let p2 = (c.min(d), c.max(d));
                if p1 == p2 {
                    continue;
                }
                let (d1, d2) = (m.dist(x, b), m.dist(c, d));
                let rho = d1.max(d2) / d1.min(d2);
                let bucket = if rho < 1.15 {
                    0
                } else if rho < 1.45 {
                    1
                } else {
                    2
                };
                let truth = d1 <= d2;
                tot[bucket] += 1;
                ok[bucket] += (oracle.le(x, b, c, d) == truth) as usize;
                let a = profile.accuracy(rho);
                exp_sum[bucket] += a * a * a + 3.0 * a * a * (1.0 - a);
            }
        }
    }
    for k in 0..3 {
        assert!(tot[k] >= 100, "bucket {k} undersampled: {}", tot[k]);
        let acc = ok[k] as f64 / tot[k] as f64;
        let exp = exp_sum[k] / tot[k] as f64;
        let z = (acc - exp).abs() / (exp * (1.0 - exp) / tot[k] as f64 + 1e-12).sqrt();
        assert!(
            z < 4.5,
            "rho bucket {k}: accuracy {acc:.4} vs profile prediction {exp:.4} \
             (z = {z:.2}, {} queries)",
            tot[k]
        );
    }
}

/// The adversarial oracles' error budget is *exactly* the `(1 + mu)` band:
/// every wrong answer must involve two in-band quantities, at every noise
/// level and for both a deterministic and a seeded random in-band strategy.
#[test]
fn adversarial_value_oracle_never_exceeds_band_budget() {
    let n = 120usize;
    let values: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64) * 0.37).collect();
    for &mu in &[0.0, 0.2, 0.6, 1.5] {
        for variant in 0..2 {
            let mut wrong_in_band = 0usize;
            let check = |oracle: &mut dyn ComparisonOracle, wrong_in_band: &mut usize| {
                for i in 0..n {
                    for j in 0..n {
                        if i == j {
                            continue;
                        }
                        let truth = values[i] <= values[j];
                        let band = in_band(values[i], values[j], mu);
                        let ans = oracle.le(i, j);
                        if ans != truth {
                            assert!(
                                band,
                                "mu = {mu}, variant {variant}: out-of-band lie at ({i},{j})"
                            );
                            *wrong_in_band += 1;
                        }
                    }
                }
            };
            if variant == 0 {
                let mut o = AdversarialValueOracle::new(values.clone(), mu, InvertAdversary);
                check(&mut o, &mut wrong_in_band);
                // The inverting adversary spends its whole budget.
                if mu > 0.0 {
                    assert!(wrong_in_band > 0, "mu = {mu}: invert adversary never lied");
                }
            } else {
                let mut o = AdversarialValueOracle::new(
                    values.clone(),
                    mu,
                    PersistentRandomAdversary::new(0xBAD + mu as u64),
                );
                check(&mut o, &mut wrong_in_band);
            }
        }
    }
}

/// Same band-budget conformance for the quadruplet oracle over a metric.
#[test]
fn adversarial_quad_oracle_never_exceeds_band_budget() {
    let n = 40usize;
    let m = EuclideanMetric::from_points(
        &(0..n)
            .map(|i| vec![(i as f64).sqrt() * 3.0])
            .collect::<Vec<_>>(),
    );
    for &mu in &[0.1, 0.5, 1.0] {
        let mut oracle = AdversarialQuadOracle::new(m.clone(), mu, InvertAdversary);
        for a in 0..n {
            for c in (a + 1)..n {
                let (b, d) = ((a + 6) % n, (c + 17) % n);
                let p1 = (a.min(b), a.max(b));
                let p2 = (c.min(d), c.max(d));
                if a == b || c == d || p1 == p2 {
                    continue;
                }
                let (d1, d2) = (m.dist(a, b), m.dist(c, d));
                let truth = d1 <= d2;
                if oracle.le(a, b, c, d) != truth {
                    assert!(
                        in_band(d1, d2, mu),
                        "mu = {mu}: out-of-band lie at ({a},{b};{c},{d}), d1={d1} d2={d2}"
                    );
                }
            }
        }
    }
}
