//! Ordering tasks — full sort, k-th selection, top-k partition.
//!
//! The ordering subsystem answers three questions about hidden values
//! through the same `Session` front door as everything else:
//!
//! * `Task::Sort` — the full descending ranking (Gu–Xu-style insertion
//!   with window votes plus a polish sweep);
//! * `Task::Select { k }` — the k-th largest item alone;
//! * `Task::Partition { k }` — the top-k / rest split without paying for
//!   a total order (Braverman–Mao–Weinberg-style narrowing).
//!
//! The demo sorts the same hidden values under each noise model and
//! reports dislocation — how far items land from their true positions —
//! then shows select/partition agreeing on the boundary, and a budget
//! kill surfacing a typed `SortedPrefix` partial.
//!
//! Run with `cargo run --release --example noisy_sort`.

use noisy_oracle::eval::rank::{kendall_tau, max_dislocation};
use noisy_oracle::eval::Table;
use noisy_oracle::oracle::crowd::AccuracyProfile;
use noisy_oracle::{NcoError, Noise, PartialOutcome, Session, Task};

fn main() -> Result<(), NcoError> {
    let n = 512usize;
    // Hidden values: a scrambled permutation — order-hostile on purpose.
    let values: Vec<f64> = (0..n).map(|i| 1.0 + ((i * 193) % n) as f64).collect();

    println!("n = {n} hidden values; Task::Sort per noise model\n");
    let mut table = Table::new(
        "Task::Sort through Session::run, per noise model",
        &[
            "noise model",
            "max dislocation",
            "kendall tau",
            "queries",
            "rounds",
        ],
    );

    let models: Vec<(&str, Noise)> = vec![
        ("exact", Noise::Exact),
        ("adversarial mu=0.2", Noise::Adversarial { mu: 0.2 }),
        (
            "probabilistic p=0.15",
            Noise::Probabilistic { p: 0.15, seed: 7 },
        ),
        (
            "crowd (caltech, 3 workers)",
            Noise::Crowd {
                profile: AccuracyProfile::caltech_like(),
                workers: 3,
                seed: 7,
            },
        ),
    ];

    for (name, noise) in models {
        let session = Session::builder()
            .values(values.clone())
            .noise(noise)
            .seed(42)
            .build()?;
        let outcome = session.run(Task::Sort)?;
        let ranking = outcome.answer.ranking().expect("Sort returns a ranking");
        table.row(&[
            name.into(),
            max_dislocation(&values, ranking).to_string(),
            kendall_tau(&values, ranking).to_string(),
            outcome.report.queries.to_string(),
            outcome.report.rounds.to_string(),
        ]);
    }
    println!("{table}");
    println!("(Exact oracle: dislocation 0. Under persistent noise the window");
    println!(" votes keep every item within O(sqrt(n log n)) of its true slot.)\n");

    // Select and partition share one narrowing engine: the partition's
    // boundary item *is* the select answer, for a fraction of a sort.
    let k = n / 8;
    let build = || {
        Session::builder()
            .values(values.clone())
            .noise(Noise::Probabilistic { p: 0.15, seed: 3 })
            .seed(1)
            .build()
    };
    let sel = build()?.run(Task::Select { k })?;
    let part = build()?.run(Task::Partition { k })?;
    let (top, rest) = part.answer.partition().unwrap();
    println!(
        "Task::Select {{ k: {k} }}   -> item {:?} in {} queries",
        sel.answer.item().unwrap(),
        sel.report.queries,
    );
    println!(
        "Task::Partition {{ k: {k} }} -> |top| = {}, |rest| = {}, boundary {:?}",
        top.len(),
        rest.len(),
        top.last().unwrap(),
    );

    // A budget kill mid-sort degrades to a typed partial: the committed
    // prefix, bit-identical to the same prefix of an unkilled run.
    let full = build()?.run(Task::Sort)?.report.queries;
    let capped = Session::builder()
        .values(values)
        .noise(Noise::Probabilistic { p: 0.15, seed: 3 })
        .budget(full - 1)
        .seed(1)
        .build()?;
    match capped.run(Task::Sort) {
        Err(NcoError::BudgetExceeded {
            budget,
            partial: Some(PartialOutcome::SortedPrefix { items, n }),
            ..
        }) => {
            println!("\nbudget demo: killed at {budget} of {full} queries");
            println!(
                "             -> SortedPrefix with {}/{n} positions committed",
                items.len()
            );
        }
        other => println!("budget demo: unexpectedly {other:?}"),
    }
    Ok(())
}
