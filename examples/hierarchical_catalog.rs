//! Agglomerative clustering of the `amazon` catalog analogue with a
//! simulated crowd oracle — a miniature of Figure 7: mean true merge
//! distance of the oracle-driven hierarchy vs. the exact (`TDist`)
//! agglomeration and the `Samp` baseline, for both linkage objectives.
//!
//! Run with `cargo run --release --example hierarchical_catalog`.

use noisy_oracle::core::hier::baselines::hier_samp;
use noisy_oracle::core::hier::{hier_exact, hier_oracle, HierParams, Linkage};
use noisy_oracle::data::amazon;
use noisy_oracle::eval::hier_eval::mean_merge_distance;
use noisy_oracle::eval::{pair_f_score, Table};
use noisy_oracle::oracle::crowd::{AccuracyProfile, CrowdQuadOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 220usize;
    let dataset = amazon(n, 3);
    let metric = &dataset.metric;
    let truth = dataset.labels.as_ref().expect("amazon is labelled");
    println!("amazon catalog analogue: n = {n}, crowd oracle (3 workers, flat noise)\n");

    let mut table = Table::new(
        "mean true merge distance (normalised to TDist = 1.00; lower is better)",
        &[
            "linkage",
            "TDist",
            "HC (ours)",
            "Samp",
            "HC cut F-score @ k=14",
        ],
    );

    for linkage in [Linkage::Single, Linkage::Complete] {
        let exact = hier_exact(metric, linkage);
        let base = mean_merge_distance(&exact, metric, linkage);

        let mut rng = StdRng::seed_from_u64(9);
        let mut oracle = CrowdQuadOracle::new(metric, AccuracyProfile::amazon_like(), 3, 21);
        let ours = hier_oracle(&HierParams::experimental(linkage), &mut oracle, &mut rng);
        let ours_d = mean_merge_distance(&ours, metric, linkage);

        let mut oracle = CrowdQuadOracle::new(metric, AccuracyProfile::amazon_like(), 3, 22);
        let samp = hier_samp(linkage, &mut oracle, &mut rng);
        let samp_d = mean_merge_distance(&samp, metric, linkage);

        let f = pair_f_score(&ours.cut(14), truth);
        table.row(&[
            format!("{linkage:?}"),
            "1.00".into(),
            format!("{:.2}", ours_d / base),
            format!("{:.2}", samp_d / base),
            format!("{:.2}", f.f1),
        ]);
    }
    println!("{table}");
    println!("expected shape (paper Fig. 7): HC close to 1.0, Samp above it.");
}
