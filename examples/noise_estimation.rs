//! Noise-rate estimation, online and offline — the workflow that decides
//! whether a session's configured noise rate can be trusted.
//!
//! Online (the `Session` probe plane): [`SessionBuilder::probe_noise`]
//! injects seeded, billed transitivity-triangle probes into the live
//! query stream and reports a flip-rate estimate in
//! `RunReport::observed_flip_rate`; combined with
//! [`SessionBuilder::assume_noise_rate`] the session fails typed
//! (`NcoError::NoiseMisspecified`) when the observation contradicts the
//! assumption, and with [`SessionBuilder::adapt_noise`] it re-derives
//! its repetition parameters instead of failing.
//!
//! Offline (the Section 6 workflow): measure crowd accuracy per
//! distance-ratio bucket on a validation sample, then fit either the
//! adversarial model (sharp cliff, estimate `mu`) or the probabilistic
//! model (flat noise, estimate `p`).
//!
//! Run with `cargo run --release --example noise_estimation`.
//!
//! [`SessionBuilder::probe_noise`]: noisy_oracle::SessionBuilder::probe_noise
//! [`SessionBuilder::assume_noise_rate`]: noisy_oracle::SessionBuilder::assume_noise_rate
//! [`SessionBuilder::adapt_noise`]: noisy_oracle::SessionBuilder::adapt_noise

use noisy_oracle::data::{amazon, caltech};
use noisy_oracle::eval::noise_fit::{fit_noise, FittedModel};
use noisy_oracle::eval::Table;
use noisy_oracle::oracle::crowd::{AccuracyProfile, CrowdQuadOracle};
use noisy_oracle::{AdaptPolicy, NcoError, Noise, Session, Task};

fn main() -> Result<(), NcoError> {
    online_probing()?;
    offline_fit();
    Ok(())
}

/// The probe plane in action: estimate the flip rate while the task
/// runs, then show the misspecification guard and the adaptive recovery.
fn online_probing() -> Result<(), NcoError> {
    let values: Vec<f64> = (1..=400).map(f64::from).collect();
    let true_p = 0.30;

    // 1. A well-specified session: probes ride the live query stream
    //    (billed like every other query) and the report carries the
    //    online estimate next to the configured rate.
    let session = Session::builder()
        .values(values.clone())
        .noise(Noise::Probabilistic { p: true_p, seed: 3 })
        .probe_noise(0.10)
        .seed(3)
        .build()?;
    let outcome = session.run(Task::Max)?;
    println!(
        "probe plane: configured p = {true_p}, observed ~ {:.3} from {} billed probes \
         ({} queries total)",
        outcome.report.observed_flip_rate.unwrap_or(f64::NAN),
        outcome.report.probes.unwrap_or(0),
        outcome.report.queries,
    );

    // 2. The same oracle with a badly misspecified assumption: the
    //    guard fails typed, spend preserved.
    let fixed = Session::builder()
        .values(values.clone())
        .noise(Noise::Probabilistic { p: true_p, seed: 3 })
        .assume_noise_rate(0.15) // half the real rate
        .probe_noise(0.10)
        .seed(3)
        .build()?;
    match fixed.run(Task::Max) {
        Err(NcoError::NoiseMisspecified {
            assumed,
            observed,
            probes,
            report,
        }) => println!(
            "guard: assumed {assumed}, {probes} probes observed {observed:.3} — failed \
             typed after {} queries",
            report.queries
        ),
        other => println!("guard: seed did not trip the CI bound ({other:?})"),
    }

    // 3. The adaptive session recovers instead: it re-derives its
    //    repetition parameters from the probed rate and re-runs.
    let adaptive = Session::builder()
        .values(values)
        .noise(Noise::Probabilistic { p: true_p, seed: 3 })
        .assume_noise_rate(0.15)
        .probe_noise(0.10)
        .adapt_noise(AdaptPolicy::Escalate)
        .seed(3)
        .build()?;
    let outcome = adaptive.run(Task::Max)?;
    println!(
        "adapt: {} adaptation(s), answer item {:?} after {} queries\n",
        outcome.report.adaptations,
        outcome.answer.item(),
        outcome.report.queries,
    );
    Ok(())
}

/// The Section 6 offline workflow on simulated crowd transcripts.
fn offline_fit() {
    let mut table = Table::new(
        "noise-model fits from 20k validation quadruplets (3-worker crowd)",
        &[
            "dataset",
            "overall accuracy",
            "fitted model",
            "recommended algorithms",
        ],
    );

    // caltech-like validation sample: sharp accuracy cliff (Fig. 4a).
    let d = caltech(300, 3);
    let mut crowd = CrowdQuadOracle::new(&d.metric, AccuracyProfile::caltech_like(), 3, 1);
    let fit = fit_noise(&d.metric, &mut crowd, 20_000, 7);
    table.row(&[
        "caltech".into(),
        format!("{:.3}", fit.overall_accuracy),
        describe(&fit.model),
        recommend(&fit.model),
    ]);

    // amazon-like validation sample: persistent noise at all ranges
    // (Fig. 4b).
    let d = amazon(300, 3);
    let mut crowd = CrowdQuadOracle::new(&d.metric, AccuracyProfile::amazon_like(), 3, 2);
    let fit = fit_noise(&d.metric, &mut crowd, 20_000, 8);
    table.row(&[
        "amazon".into(),
        format!("{:.3}", fit.overall_accuracy),
        describe(&fit.model),
        recommend(&fit.model),
    ]);

    println!("{table}");
    println!("paper (§6.2.1/§6.3): caltech's decline past ratio 1.45 selects the adversarial");
    println!("algorithms; amazon's range-independent noise selects the probabilistic ones.");
}

fn describe(model: &FittedModel) -> String {
    match model {
        FittedModel::Adversarial { mu_hat } => format!("adversarial (mu_hat = {mu_hat:.2})"),
        FittedModel::Probabilistic { p_hat } => format!("probabilistic (p_hat = {p_hat:.2})"),
    }
}

fn recommend(model: &FittedModel) -> String {
    match model {
        FittedModel::Adversarial { .. } => "Max-Adv / kC_a / HC_a".into(),
        FittedModel::Probabilistic { .. } => "Count-Max-Prob / kC_p / Far_p".into(),
    }
}
