//! Noise-model estimation on a validation sample — the Section 6 workflow
//! that decides which algorithm variant to run on a new dataset:
//! measure crowd accuracy per distance-ratio bucket, then fit either the
//! adversarial model (sharp cliff, estimate `mu`) or the probabilistic
//! model (flat noise, estimate `p`).
//!
//! Run with `cargo run --release --example noise_estimation`.

use noisy_oracle::data::{amazon, caltech};
use noisy_oracle::eval::noise_fit::{fit_noise, FittedModel};
use noisy_oracle::eval::Table;
use noisy_oracle::oracle::crowd::{AccuracyProfile, CrowdQuadOracle};

fn main() {
    let mut table = Table::new(
        "noise-model fits from 20k validation quadruplets (3-worker crowd)",
        &[
            "dataset",
            "overall accuracy",
            "fitted model",
            "recommended algorithms",
        ],
    );

    // caltech-like validation sample: sharp accuracy cliff (Fig. 4a).
    let d = caltech(300, 3);
    let mut crowd = CrowdQuadOracle::new(&d.metric, AccuracyProfile::caltech_like(), 3, 1);
    let fit = fit_noise(&d.metric, &mut crowd, 20_000, 7);
    table.row(&[
        "caltech".into(),
        format!("{:.3}", fit.overall_accuracy),
        describe(&fit.model),
        recommend(&fit.model),
    ]);

    // amazon-like validation sample: persistent noise at all ranges
    // (Fig. 4b).
    let d = amazon(300, 3);
    let mut crowd = CrowdQuadOracle::new(&d.metric, AccuracyProfile::amazon_like(), 3, 2);
    let fit = fit_noise(&d.metric, &mut crowd, 20_000, 8);
    table.row(&[
        "amazon".into(),
        format!("{:.3}", fit.overall_accuracy),
        describe(&fit.model),
        recommend(&fit.model),
    ]);

    println!("{table}");
    println!("paper (§6.2.1/§6.3): caltech's decline past ratio 1.45 selects the adversarial");
    println!("algorithms; amazon's range-independent noise selects the probabilistic ones.");
}

fn describe(model: &FittedModel) -> String {
    match model {
        FittedModel::Adversarial { mu_hat } => format!("adversarial (mu_hat = {mu_hat:.2})"),
        FittedModel::Probabilistic { p_hat } => format!("probabilistic (p_hat = {p_hat:.2})"),
    }
}

fn recommend(model: &FittedModel) -> String {
    match model {
        FittedModel::Adversarial { .. } => "Max-Adv / kC_a / HC_a".into(),
        FittedModel::Probabilistic { .. } => "Count-Max-Prob / kC_p / Far_p".into(),
    }
}
