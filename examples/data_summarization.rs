//! Example 1.1 of the paper, end to end: summarising six landmark photos
//! with k = 3 representatives.
//!
//! The cast (0-indexed):
//!   0, 1 — Eiffel Tower, Paris;  2 — Colosseum, Rome;  3 — Eiffel replica,
//!   Las Vegas;  4 — Venice;  5 — Leaning Tower of Pisa.
//! Ground-truth summary: {0,1}, {2,4,5}, {3}.
//!
//! The Vision-API *feature* distances are deceptive: the pair (0, 3) — the
//! two Eiffel towers on different continents — has the smallest distance
//! (similarity 0.87; everything else below 0.85), so automated greedy
//! k-center co-clusters them. Crowd workers answering *relative distance*
//! (quadruplet) queries know better, and pairwise "same optimal cluster?"
//! queries sit in between (high precision, terrible recall): the paper
//! reports F-scores of 1.0 (quadruplet), 0.40 (pairwise) for this task.
//!
//! Run with `cargo run --release --example data_summarization`.

use noisy_oracle::core::kcenter::baselines::{oq_clustering, sample_pairs};
use noisy_oracle::core::kcenter::{gonzalez, kcenter_adv, KCenterAdvParams};
use noisy_oracle::eval::{pair_f_score, Table};
use noisy_oracle::metric::MatrixMetric;
use noisy_oracle::oracle::cluster_query::ClusterQueryOracle;
use noisy_oracle::oracle::crowd::{AccuracyProfile, CrowdQuadOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Feature-space (Vision API) distances: pair (0,3) deceptively closest.
fn feature_metric() -> MatrixMetric {
    #[rustfmt::skip]
    let full = [
        0.00, 0.16, 0.40, 0.13, 0.42, 0.41,
        0.16, 0.00, 0.39, 0.28, 0.43, 0.40,
        0.40, 0.39, 0.00, 0.44, 0.20, 0.18,
        0.13, 0.28, 0.44, 0.00, 0.45, 0.43,
        0.42, 0.43, 0.20, 0.45, 0.00, 0.22,
        0.41, 0.40, 0.18, 0.43, 0.22, 0.00,
    ];
    MatrixMetric::from_full(&full, 6)
}

/// Human-judgement distances: the Vegas replica (3) is far from everything.
fn human_metric() -> MatrixMetric {
    #[rustfmt::skip]
    let full = [
        0.00, 0.16, 0.40, 0.50, 0.42, 0.41,
        0.16, 0.00, 0.39, 0.52, 0.43, 0.40,
        0.40, 0.39, 0.00, 0.55, 0.20, 0.18,
        0.50, 0.52, 0.55, 0.00, 0.56, 0.54,
        0.42, 0.43, 0.20, 0.56, 0.00, 0.22,
        0.41, 0.40, 0.18, 0.54, 0.22, 0.00,
    ];
    MatrixMetric::from_full(&full, 6)
}

fn main() {
    let truth = vec![0usize, 0, 1, 2, 1, 1]; // {0,1}, {2,4,5}, {3}
    let names = [
        "Eiffel#1",
        "Eiffel#2",
        "Colosseum",
        "Vegas-Eiffel",
        "Venice",
        "Pisa",
    ];
    let mut rng = StdRng::seed_from_u64(11);

    let mut table = Table::new(
        "Example 1.1 — six-image summarisation, k = 3",
        &["method", "clusters", "pair F-score"],
    );

    // (a) Automated greedy k-center on the deceptive feature distances.
    let auto = gonzalez(&feature_metric(), 3, Some(2));
    let f_auto = pair_f_score(auto.labels(), &truth);
    table.row(&[
        "greedy on API features".into(),
        render(&names, auto.labels()),
        format!("{:.2}", f_auto.f1),
    ]);

    // (b) Quadruplet crowd oracle (3 AMT workers, monuments-like accuracy)
    //     driving the robust adversarial k-center.
    let mut crowd = CrowdQuadOracle::new(human_metric(), AccuracyProfile::monuments_like(), 3, 5);
    let params = KCenterAdvParams {
        first_center: Some(2),
        ..KCenterAdvParams::with_confidence(3, 0.05)
    };
    let ours = kcenter_adv(&params, &mut crowd, &mut rng);
    let f_ours = pair_f_score(ours.labels(), &truth);
    table.row(&[
        "quadruplet crowd + kC (ours)".into(),
        render(&names, ours.labels()),
        format!("{:.2}", f_ours.f1),
    ]);

    // (c) Pairwise "same optimal cluster?" queries (the Oq strawman).
    let mut oq = ClusterQueryOracle::crowd_like(truth.clone(), 3);
    let pairs = sample_pairs(6, 15, &mut rng);
    let oq_labels = oq_clustering(&mut oq, &pairs);
    let f_oq = pair_f_score(&oq_labels, &truth);
    table.row(&[
        "pairwise same-cluster (Oq)".into(),
        render(&names, &oq_labels),
        format!("{:.2}", f_oq.f1),
    ]);

    println!("{table}");
    println!("paper reports: quadruplet F = 1.00, pairwise F = 0.40 (Section 1, 6.2.2)");

    assert!(
        f_ours.f1 >= 0.99,
        "quadruplet pipeline must recover the summary"
    );
    assert!(
        f_auto.f1 < 0.99,
        "feature-based greedy must fall for the replica"
    );
}

fn render(names: &[&str], labels: &[usize]) -> String {
    let k = labels.iter().max().unwrap() + 1;
    let mut groups: Vec<Vec<&str>> = vec![Vec::new(); k];
    for (i, &l) in labels.iter().enumerate() {
        groups[l].push(names[i]);
    }
    groups
        .iter()
        .filter(|g| !g.is_empty())
        .map(|g| format!("{{{}}}", g.join(",")))
        .collect::<Vec<_>>()
        .join(" ")
}
