//! Robustness sweep: how farthest-point quality degrades with the noise
//! level, under both noise models — a miniature of Figures 8 and 9.
//!
//! **Low-level API example**: this one deliberately hand-wires oracles,
//! comparators, params and rngs instead of going through the `Session`
//! front door (see `quickstart.rs` / `kcenter_cities.rs` for that), so
//! the full pipeline stays visible for callers who need to customise it.
//!
//! Run with `cargo run --release --example noise_robustness`.

use noisy_oracle::core::maxfind::AdvParams;
use noisy_oracle::core::neighbor::baselines::{farthest_samp, farthest_tour2};
use noisy_oracle::core::neighbor::{farthest_adv, farthest_prob};
use noisy_oracle::data::cities;
use noisy_oracle::eval::{run_reps, Table};
use noisy_oracle::metric::stats::exact_farthest;
use noisy_oracle::metric::Metric;
use noisy_oracle::oracle::adversarial::{AdversarialQuadOracle, PersistentRandomAdversary};
use noisy_oracle::oracle::probabilistic::ProbQuadOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 600usize;
    let reps = 10usize;
    let dataset = cities(n, 5);
    let metric = &dataset.metric;
    let q = 0usize;
    let (_, d_opt) = exact_farthest(metric, q, 0..n).unwrap();
    println!("cities analogue, n = {n}: true farthest distance from record {q} is {d_opt:.1}\n");

    let mut table = Table::new(
        "farthest-point distance vs. adversarial noise (mean over reps; optimum = 1.0)",
        &["mu", "Far (ours)", "Tour2", "Samp"],
    );
    for mu in [0.0, 0.5, 1.0, 2.0] {
        let ours = run_reps(reps, 40, |seed| {
            let mut o =
                AdversarialQuadOracle::new(metric, mu, PersistentRandomAdversary::new(seed));
            let mut rng = StdRng::seed_from_u64(seed);
            let got = farthest_adv(&mut o, q, &AdvParams::experimental(), &mut rng).unwrap();
            noisy_oracle::eval::experiment::RepOutcome {
                value: metric.dist(q, got) / d_opt,
                queries: 0,
            }
        });
        let tour2 = run_reps(reps, 40, |seed| {
            let mut o =
                AdversarialQuadOracle::new(metric, mu, PersistentRandomAdversary::new(seed));
            let mut rng = StdRng::seed_from_u64(seed);
            let got = farthest_tour2(&mut o, q, &mut rng).unwrap();
            noisy_oracle::eval::experiment::RepOutcome {
                value: metric.dist(q, got) / d_opt,
                queries: 0,
            }
        });
        let samp = run_reps(reps, 40, |seed| {
            let mut o =
                AdversarialQuadOracle::new(metric, mu, PersistentRandomAdversary::new(seed));
            let mut rng = StdRng::seed_from_u64(seed);
            let got = farthest_samp(&mut o, q, &mut rng).unwrap();
            noisy_oracle::eval::experiment::RepOutcome {
                value: metric.dist(q, got) / d_opt,
                queries: 0,
            }
        });
        table.row(&[
            format!("{mu:.1}"),
            format!("{:.3}", ours.value.mean),
            format!("{:.3}", tour2.value.mean),
            format!("{:.3}", samp.value.mean),
        ]);
    }
    println!("{table}");

    let mut table = Table::new(
        "farthest-point distance vs. probabilistic noise (optimum = 1.0)",
        &["p", "Far_p (ours)", "Tour2", "Samp"],
    );
    for p in [0.0, 0.1, 0.3] {
        let ours = run_reps(reps, 70, |seed| {
            let mut o = ProbQuadOracle::new(metric, p, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let got = farthest_prob(&mut o, q, 0.1, &AdvParams::experimental(), &mut rng).unwrap();
            noisy_oracle::eval::experiment::RepOutcome {
                value: metric.dist(q, got) / d_opt,
                queries: 0,
            }
        });
        let tour2 = run_reps(reps, 70, |seed| {
            let mut o = ProbQuadOracle::new(metric, p, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let got = farthest_tour2(&mut o, q, &mut rng).unwrap();
            noisy_oracle::eval::experiment::RepOutcome {
                value: metric.dist(q, got) / d_opt,
                queries: 0,
            }
        });
        let samp = run_reps(reps, 70, |seed| {
            let mut o = ProbQuadOracle::new(metric, p, seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let got = farthest_samp(&mut o, q, &mut rng).unwrap();
            noisy_oracle::eval::experiment::RepOutcome {
                value: metric.dist(q, got) / d_opt,
                queries: 0,
            }
        });
        table.row(&[
            format!("{p:.1}"),
            format!("{:.3}", ours.value.mean),
            format!("{:.3}", tour2.value.mean),
            format!("{:.3}", samp.value.mean),
        ]);
    }
    println!("{table}");
    println!("expected shape (paper Figs. 8–9): ours stays near 1.0 at every noise level;");
    println!("Tour2 matches at low noise and degrades; Samp misses the skewed optimum.");
}
