//! k-center over the `cities` analogue under adversarial noise — a
//! miniature of Figure 6(a), driven through the `Session` front door: one
//! shared `Engine` (with its distance cache) serves every clustering
//! request, and each run reports its exact query cost.
//!
//! The `Tour2` / `Samp` baselines and the true-distance greedy (`TDist`)
//! stay on the low-level APIs — they are evaluation references, not part
//! of the serving surface.
//!
//! Run with `cargo run --release --example kcenter_cities`.

use noisy_oracle::core::kcenter::baselines::{kcenter_samp, kcenter_tour2};
use noisy_oracle::core::kcenter::gonzalez;
use noisy_oracle::data::cities;
use noisy_oracle::eval::Table;
use noisy_oracle::metric::stats::kcenter_objective;
use noisy_oracle::oracle::adversarial::{AdversarialQuadOracle, InvertAdversary};
use noisy_oracle::{Engine, NcoError, Noise, Session, Task};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), NcoError> {
    let n = 800usize;
    let mu = 1.0;
    let dataset = cities(n, 7);
    let metric = &dataset.metric;
    println!("cities analogue: n = {n}, mu = {mu}, adversarial oracle (worst-case liar)");
    println!("one shared Engine + DistCache across all Session runs\n");

    // One immutable engine for the whole corpus: every session below
    // shares its lock-free distance cache, so each distinct pair distance
    // is computed at most once across all values of k.
    let engine = Engine::from_dataset(&dataset, true);

    let mut table = Table::new(
        "k-center objective (max radius; lower is better)",
        &[
            "k",
            "TDist",
            "kC (Session)",
            "Tour2",
            "Samp",
            "queries (kC)",
        ],
    );

    for k in [5usize, 10, 20, 40] {
        let tdist = gonzalez(metric, k, Some(0));
        let obj_t = kcenter_objective(metric, &tdist.centers, &tdist.assignment);

        // The robust algorithm, through the front door.
        let session = Session::builder()
            .engine(engine.clone())
            .noise(Noise::Adversarial { mu })
            .first_center(0)
            .seed(100 + k as u64)
            .build()?;
        let outcome = session.run(Task::KCenter { k })?;
        let ours = outcome.answer.clustering().expect("KCenter returns one");
        let obj_o = kcenter_objective(metric, &ours.centers, &ours.assignment);

        // Baselines, hand-wired (low-level API).
        let mut rng = StdRng::seed_from_u64(100 + k as u64);
        let mut oracle = AdversarialQuadOracle::new(metric, mu, InvertAdversary);
        let t2 = kcenter_tour2(k, Some(0), &mut oracle, &mut rng);
        let obj_2 = kcenter_objective(metric, &t2.centers, &t2.assignment);

        let mut oracle = AdversarialQuadOracle::new(metric, mu, InvertAdversary);
        let sp = kcenter_samp(k, Some(0), &mut oracle, &mut rng);
        let obj_s = kcenter_objective(metric, &sp.centers, &sp.assignment);

        table.row(&[
            k.to_string(),
            format!("{obj_t:.1}"),
            format!("{obj_o:.1}"),
            format!("{obj_2:.1}"),
            format!("{obj_s:.1}"),
            outcome.report.queries.to_string(),
        ]);
    }
    println!("{table}");
    println!(
        "expected shape (paper Fig. 6a): kC tracks TDist; baselines drift above.\n\
         distance cache after all runs: {} distinct pairs materialised",
        engine.cache_entries().unwrap_or(0)
    );
    Ok(())
}
