//! k-center over the `cities` analogue under adversarial noise — a
//! miniature of Figure 6(a): objective vs. k for the robust algorithm, the
//! `Tour2` / `Samp` baselines and the true-distance greedy (`TDist`).
//!
//! Run with `cargo run --release --example kcenter_cities`.

use noisy_oracle::core::kcenter::baselines::{kcenter_samp, kcenter_tour2};
use noisy_oracle::core::kcenter::{gonzalez, kcenter_adv, KCenterAdvParams};
use noisy_oracle::data::cities;
use noisy_oracle::eval::Table;
use noisy_oracle::metric::stats::kcenter_objective;
use noisy_oracle::oracle::adversarial::{AdversarialQuadOracle, InvertAdversary};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 800usize;
    let mu = 1.0;
    let dataset = cities(n, 7);
    let metric = &dataset.metric;
    println!("cities analogue: n = {n}, mu = {mu}, adversarial oracle (worst-case liar)\n");

    let mut table = Table::new(
        "k-center objective (max radius; lower is better)",
        &["k", "TDist", "kC (ours)", "Tour2", "Samp"],
    );

    for k in [5usize, 10, 20, 40] {
        let tdist = gonzalez(metric, k, Some(0));
        let obj_t = kcenter_objective(metric, &tdist.centers, &tdist.assignment);

        let mut rng = StdRng::seed_from_u64(100 + k as u64);
        let mut oracle = AdversarialQuadOracle::new(metric, mu, InvertAdversary);
        let params = KCenterAdvParams {
            first_center: Some(0),
            ..KCenterAdvParams::experimental(k)
        };
        let ours = kcenter_adv(&params, &mut oracle, &mut rng);
        let obj_o = kcenter_objective(metric, &ours.centers, &ours.assignment);

        let mut oracle = AdversarialQuadOracle::new(metric, mu, InvertAdversary);
        let t2 = kcenter_tour2(k, Some(0), &mut oracle, &mut rng);
        let obj_2 = kcenter_objective(metric, &t2.centers, &t2.assignment);

        let mut oracle = AdversarialQuadOracle::new(metric, mu, InvertAdversary);
        let sp = kcenter_samp(k, Some(0), &mut oracle, &mut rng);
        let obj_s = kcenter_objective(metric, &sp.centers, &sp.assignment);

        table.row(&[
            k.to_string(),
            format!("{obj_t:.1}"),
            format!("{obj_o:.1}"),
            format!("{obj_2:.1}"),
            format!("{obj_s:.1}"),
        ]);
    }
    println!("{table}");
    println!("expected shape (paper Fig. 6a): kC tracks TDist; baselines drift above.");
}
