//! Quickstart: find the maximum of hidden values through a noisy
//! comparison oracle, and watch the naive strategies fail where the
//! paper's algorithms hold their guarantee.
//!
//! Run with `cargo run --release --example quickstart`.

use noisy_oracle::core::comparator::ValueCmp;
use noisy_oracle::core::maxfind::{
    count_max, max_adv, max_prob, tournament, AdvParams, ProbParams,
};
use noisy_oracle::eval::rank::max_approx_ratio;
use noisy_oracle::eval::Table;
use noisy_oracle::oracle::adversarial::{AdversarialValueOracle, InvertAdversary};
use noisy_oracle::oracle::counting::Counting;
use noisy_oracle::oracle::probabilistic::ProbValueOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = 1024usize;
    let mu = 0.5;
    // Hidden values: a geometric-ish ladder with lots of in-band confusion.
    let values: Vec<f64> = (0..n)
        .map(|i| 1.5f64.powi((i % 64) as i32 / 4) * (1.0 + i as f64 * 1e-4))
        .collect();
    let items: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(42);

    println!("n = {n} hidden values, adversarial noise band mu = {mu}\n");
    let mut table = Table::new(
        "finding the maximum under adversarial noise (worst-case liar)",
        &["algorithm", "approx ratio", "queries", "guarantee"],
    );

    // Naive running maximum: can lose a (1+mu) factor at every step.
    {
        let mut oracle = Counting::new(AdversarialValueOracle::new(
            values.clone(),
            mu,
            InvertAdversary,
        ));
        let mut best = items[0];
        for &v in &items[1..] {
            use noisy_oracle::oracle::ComparisonOracle;
            if oracle.le(best, v) {
                best = v;
            }
        }
        table.row(&[
            "running max".into(),
            format!("{:.3}", max_approx_ratio(&values, best)),
            oracle.queries().to_string(),
            "none — Θ((1+mu)^n) worst case".into(),
        ]);
    }

    // Count-Max (Algorithm 1): quadratic but (1+mu)^2-safe.
    {
        let mut oracle = Counting::new(AdversarialValueOracle::new(
            values.clone(),
            mu,
            InvertAdversary,
        ));
        let best = count_max(&items, &mut ValueCmp::new(&mut oracle)).unwrap();
        table.row(&[
            "Count-Max (Alg 1)".into(),
            format!("{:.3}", max_approx_ratio(&values, best)),
            oracle.queries().to_string(),
            format!("(1+mu)^2 = {:.2}", (1.0 + mu) * (1.0 + mu)),
        ]);
    }

    // Binary tournament (the Tour2 baseline).
    {
        let mut oracle = Counting::new(AdversarialValueOracle::new(
            values.clone(),
            mu,
            InvertAdversary,
        ));
        let best = tournament(&items, 2, &mut ValueCmp::new(&mut oracle), &mut rng).unwrap();
        table.row(&[
            "Tournament λ=2".into(),
            format!("{:.3}", max_approx_ratio(&values, best)),
            oracle.queries().to_string(),
            "(1+mu)^log n (weak)".into(),
        ]);
    }

    // Max-Adv (Algorithm 4): the paper's headline result.
    {
        let mut oracle = Counting::new(AdversarialValueOracle::new(
            values.clone(),
            mu,
            InvertAdversary,
        ));
        let best = max_adv(
            &items,
            &AdvParams::with_confidence(0.1),
            &mut ValueCmp::new(&mut oracle),
            &mut rng,
        )
        .unwrap();
        table.row(&[
            "Max-Adv (Alg 4)".into(),
            format!("{:.3}", max_approx_ratio(&values, best)),
            oracle.queries().to_string(),
            format!("(1+mu)^3 = {:.2} w.p. 0.9", (1.0 + mu).powi(3)),
        ]);
    }
    println!("{table}");

    // Probabilistic persistent noise: repetition cannot help, but
    // Count-Max-Prob still lands in the top ranks.
    let p = 0.3;
    let mut table = Table::new(
        format!("finding the maximum under persistent noise (p = {p})"),
        &["algorithm", "true rank of result", "queries"],
    );
    {
        let mut oracle = Counting::new(ProbValueOracle::new(values.clone(), p, 7));
        let best = max_prob(
            &items,
            &ProbParams::experimental(),
            &mut ValueCmp::new(&mut oracle),
            &mut rng,
        )
        .unwrap();
        let rank = noisy_oracle::eval::rank::max_rank(&values, best);
        table.row(&[
            "Count-Max-Prob (Alg 12)".into(),
            format!("{rank} / {n}"),
            oracle.queries().to_string(),
        ]);
    }
    {
        let mut oracle = Counting::new(ProbValueOracle::new(values.clone(), p, 7));
        let best = tournament(&items, 2, &mut ValueCmp::new(&mut oracle), &mut rng).unwrap();
        let rank = noisy_oracle::eval::rank::max_rank(&values, best);
        table.row(&[
            "Tournament λ=2".into(),
            format!("{rank} / {n}"),
            oracle.queries().to_string(),
        ]);
    }
    println!("{table}");
    println!("(Theorem 3.7: Count-Max-Prob's rank is O(log^2(n/delta)) w.h.p.)");
}
