//! Quickstart — the `Session` front door.
//!
//! One builder captures the whole pipeline (data, noise model,
//! confidence, seed, budget); every task then runs through
//! `Session::run`, returning a typed answer plus exact cost accounting.
//! The same hidden values are queried under each of the four noise
//! models, and a hard query budget is shown failing typed — no panic,
//! no overspend.
//!
//! Run with `cargo run --release --example quickstart`.

use noisy_oracle::eval::rank::{max_approx_ratio, max_rank, max_ranks};
use noisy_oracle::eval::Table;
use noisy_oracle::oracle::crowd::AccuracyProfile;
use noisy_oracle::{NcoError, Noise, Session, Task};

fn main() -> Result<(), NcoError> {
    let n = 1024usize;
    // Hidden values: a geometric-ish ladder with lots of in-band confusion.
    let values: Vec<f64> = (0..n)
        .map(|i| 1.5f64.powi((i % 64) as i32 / 4) * (1.0 + i as f64 * 1e-4))
        .collect();

    println!("n = {n} hidden values; one Session per noise model\n");
    let mut table = Table::new(
        "Task::Max through Session::run, per noise model",
        &[
            "noise model",
            "approx ratio",
            "true rank",
            "queries",
            "rounds",
        ],
    );

    let models: Vec<(&str, Noise)> = vec![
        ("exact", Noise::Exact),
        ("adversarial mu=0.5", Noise::Adversarial { mu: 0.5 }),
        (
            "probabilistic p=0.3",
            Noise::Probabilistic { p: 0.3, seed: 7 },
        ),
        (
            "crowd (caltech, 3 workers)",
            Noise::Crowd {
                profile: AccuracyProfile::caltech_like(),
                workers: 3,
                seed: 7,
            },
        ),
    ];

    for (name, noise) in models {
        let session = Session::builder()
            .values(values.clone())
            .noise(noise)
            .confidence(0.1) // theorem-grade parameters at delta = 0.1
            .seed(42)
            .build()?;
        let outcome = session.run(Task::Max)?;
        let best = outcome.answer.item().expect("Max returns an item");
        table.row(&[
            name.into(),
            format!("{:.3}", max_approx_ratio(&values, best)),
            format!("{} / {n}", max_rank(&values, best)),
            outcome.report.queries.to_string(),
            outcome.report.rounds.to_string(),
        ]);
    }
    println!("{table}");
    println!("(Thm 3.6: adversarial within (1+mu)^3 w.h.p.; Thm 3.7: probabilistic");
    println!(" rank is O(log^2(n/delta)) w.h.p. — repetition cannot help there.)\n");

    // Top-k through the same front door.
    let session = Session::builder()
        .values(values.clone())
        .noise(Noise::Probabilistic { p: 0.2, seed: 3 })
        .seed(1)
        .build()?;
    let top = session.run(Task::TopK { k: 5 })?;
    println!(
        "Task::TopK {{ k: 5 }} under p = 0.2 -> true ranks {:?} in {} queries\n",
        max_ranks(&values, top.answer.items().unwrap()),
        top.report.queries,
    );

    // A hard query budget: the run fails typed, and not a single oracle
    // query past the cap is ever issued.
    let capped = Session::builder()
        .values(values)
        .noise(Noise::Adversarial { mu: 0.5 })
        .budget(1_000)
        .seed(42)
        .build()?;
    match capped.run(Task::Max) {
        Err(NcoError::BudgetExceeded { budget, .. }) => {
            println!("budget demo: Task::Max needs more than the {budget}-query budget");
            println!("            -> Err(NcoError::BudgetExceeded), no panic, no overspend");
        }
        other => println!("budget demo: unexpectedly {other:?}"),
    }
    Ok(())
}
