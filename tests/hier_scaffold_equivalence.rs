//! The shared-scaffold search plane's contract (PR 10): running every
//! row-anchored nearest-neighbour search — the `n` initial pointer
//! searches and every complete-linkage pointer repair — over one shared
//! [`RowScaffold`] with per-row caches is **decision-identical** to the
//! per-row from-scratch reference that evolves the identical scaffold but
//! re-asks every duel (`hier_oracle_scratch` with the same scaffolded
//! params). The argument is the same persistence argument that backs the
//! PR 5 merge plane: every shipped noise model answers a canonical query
//! with a fixed bit, and a cached outcome's canonical query
//! `le(rep(row, u), rep(row, v))` is unchanged while clusters `u` and `v`
//! live. Pinned here across both linkages, four noise models and 20
//! seeds, plus worker-count bit-identity (queries *and* rounds) for the
//! scaffolded counter-stream engine, plus Theorem 5.2 re-assertions on
//! the scaffold plane's output.

use nco_testkit::{Counting, MetricScenario};
use noisy_oracle::core::hier::{
    hier_oracle, hier_oracle_par, hier_oracle_par_scratch, hier_oracle_par_stats,
    hier_oracle_scratch, hier_oracle_stats, Dendrogram, HierParams, Linkage,
};
use noisy_oracle::metric::Metric;
use noisy_oracle::oracle::crowd::AccuracyProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn scenario() -> MetricScenario {
    MetricScenario::separated_blobs(4, 6, 35.0, 0x1AC5)
}

/// Shared-scaffold vs per-row-reference merge sequences: both linkages,
/// every noise model, 20 seeds each — identical dendrograms.
#[test]
fn scaffold_matches_from_scratch_for_every_noise_model() {
    fn check(label: &str, linkage: Linkage, seed: u64, shared: Dendrogram, reference: Dendrogram) {
        assert_eq!(shared, reference, "{label}, {linkage:?}, seed {seed}");
    }

    let s = scenario();
    for linkage in [Linkage::Single, Linkage::Complete] {
        let params = HierParams::experimental(linkage).scaffolded();
        for seed in 0..20u64 {
            let mut a = s.exact_oracle();
            let mut b = s.exact_oracle();
            check(
                "exact",
                linkage,
                seed,
                hier_oracle(&params, &mut a, &mut rng(seed)),
                hier_oracle_scratch(&params, &mut b, &mut rng(seed)),
            );
            let mut a = s.adversarial_oracle(0.4);
            let mut b = s.adversarial_oracle(0.4);
            check(
                "adversarial",
                linkage,
                seed,
                hier_oracle(&params, &mut a, &mut rng(seed)),
                hier_oracle_scratch(&params, &mut b, &mut rng(seed)),
            );
            let mut a = s.probabilistic_oracle(0.15, 900 + seed);
            let mut b = s.probabilistic_oracle(0.15, 900 + seed);
            check(
                "probabilistic",
                linkage,
                seed,
                hier_oracle(&params, &mut a, &mut rng(seed)),
                hier_oracle_scratch(&params, &mut b, &mut rng(seed)),
            );
            let mut a = s.crowd_oracle(AccuracyProfile::caltech_like(), 300 + seed);
            let mut b = s.crowd_oracle(AccuracyProfile::caltech_like(), 300 + seed);
            check(
                "crowd",
                linkage,
                seed,
                hier_oracle(&params, &mut a, &mut rng(seed)),
                hier_oracle_scratch(&params, &mut b, &mut rng(seed)),
            );
        }
    }
}

/// The scaffolded counter-stream entry point honours the same contract.
#[test]
fn counter_stream_scaffold_matches_from_scratch() {
    let s = scenario();
    for linkage in [Linkage::Single, Linkage::Complete] {
        let params = HierParams::experimental(linkage).scaffolded();
        for seed in 0..10u64 {
            let mut shared = s.probabilistic_oracle(0.1, 40 + seed);
            let a = hier_oracle_par(&params, &mut shared, &mut rng(seed), 1);
            let mut reference = s.probabilistic_oracle(0.1, 40 + seed);
            let b = hier_oracle_par_scratch(&params, &mut reference, &mut rng(seed), 1);
            assert_eq!(a, b, "{linkage:?}, seed {seed}");
        }
    }
}

/// The scaffolded initial pass fans out bit-identically: the shared deal
/// is drawn before any worker exists and row sweeps consume no
/// randomness, so 1-worker and 4-worker runs must agree on the
/// dendrogram, the query count **and the round count** (rows issue the
/// same `le_round`s no matter which worker runs them).
#[cfg(feature = "parallel")]
#[test]
fn scaffolded_fan_out_is_bit_identical_and_rounds_equal() {
    use nco_oracle::SharedBudgeted;
    let s = MetricScenario::separated_blobs(4, 16, 40.0, 0x1AC6);
    for linkage in [Linkage::Single, Linkage::Complete] {
        let params = HierParams::experimental(linkage).scaffolded();
        for seed in 0..5u64 {
            let mut serial = SharedBudgeted::new(s.probabilistic_oracle(0.1, 70 + seed), None);
            let a = hier_oracle_par(&params, &mut serial, &mut rng(seed), 1);
            let mut fanned = SharedBudgeted::new(s.probabilistic_oracle(0.1, 70 + seed), None);
            let b = hier_oracle_par(&params, &mut fanned, &mut rng(seed), 4);
            assert_eq!(a, b, "{linkage:?}, seed {seed}");
            assert_eq!(
                serial.queries(),
                fanned.queries(),
                "{linkage:?}, seed {seed}"
            );
            assert_eq!(serial.rounds(), fanned.rounds(), "{linkage:?}, seed {seed}");
        }
    }
}

/// The savings are real and the new counters tell the story: under
/// complete linkage (repair-dominated) the scaffold plane issues fewer
/// queries than its from-scratch reference, serves repairs incrementally,
/// and answers a large share of duels from the per-row caches.
#[test]
fn scaffold_plane_is_cheaper_than_scratch_and_reports_stats() {
    let s = MetricScenario::separated_blobs(4, 16, 40.0, 0x1AC6);
    for linkage in [Linkage::Single, Linkage::Complete] {
        let params = HierParams::experimental(linkage).scaffolded();
        let mut shared = Counting::new(s.probabilistic_oracle(0.1, 7));
        let (da, stats) = hier_oracle_stats(&params, &mut shared, &mut rng(5));
        let mut reference = Counting::new(s.probabilistic_oracle(0.1, 7));
        let db = hier_oracle_scratch(&params, &mut reference, &mut rng(5));
        assert_eq!(da, db, "{linkage:?}");
        assert!(
            shared.queries() < reference.queries(),
            "{linkage:?}: shared {} vs reference {}",
            shared.queries(),
            reference.queries()
        );
        assert_eq!(stats.merges, 63, "{linkage:?}");
        assert!(stats.scaffold_hits > 0, "{linkage:?}: {stats:?}");
        if linkage == Linkage::Complete {
            assert!(
                stats.repair_contests + stats.repair_fallbacks > 0,
                "complete linkage must repair through the scaffold: {stats:?}"
            );
        }
    }
}

/// The scaffolded counter-stream engine beats its reference too, and the
/// scaffold counters flow through `hier_oracle_par_stats`.
#[test]
fn counter_stream_scaffold_is_cheaper_than_scratch() {
    use nco_oracle::SharedCounting;
    let s = MetricScenario::separated_blobs(4, 16, 40.0, 0x1AC6);
    let params = HierParams::experimental(Linkage::Complete).scaffolded();
    let mut shared = SharedCounting::new(s.probabilistic_oracle(0.1, 11));
    let (da, stats) = hier_oracle_par_stats(&params, &mut shared, &mut rng(2), 1);
    let mut reference = SharedCounting::new(s.probabilistic_oracle(0.1, 11));
    let db = hier_oracle_par_scratch(&params, &mut reference, &mut rng(2), 1);
    assert_eq!(da, db);
    assert!(
        shared.queries() < reference.queries(),
        "shared {} vs reference {}",
        shared.queries(),
        reference.queries()
    );
    assert!(stats.scaffold_hits > 0 && stats.repair_contests + stats.repair_fallbacks > 0);
}

/// Theorem 5.2 re-pinned on the scaffold plane (adversarial noise): every
/// merge within `(1 + mu)^3` of the best available merge in at least 80%
/// of (merge, seed) replays, checked on true distances.
#[test]
fn theorem_5_2_per_merge_bound_holds_on_the_scaffold_plane() {
    let s = MetricScenario::separated_blobs(3, 7, 25.0, 0x1AC7);
    let mu = 0.3;
    let mut total = 0usize;
    let mut within = 0usize;
    for seed in 0..8u64 {
        let mut o = s.adversarial_oracle(mu);
        let d = hier_oracle(
            &HierParams::with_confidence(Linkage::Single, s.n(), 0.1).scaffolded(),
            &mut o,
            &mut rng(600 + seed),
        );
        let mut members: Vec<Vec<usize>> = (0..s.n()).map(|i| vec![i]).collect();
        for mg in &d.merges {
            let merged = linkage_dist(&s, &members[mg.a], &members[mg.b]);
            let best = best_available(&s, &members, mg.merged);
            total += 1;
            if merged <= best * (1.0 + mu).powi(3) + 1e-9 {
                within += 1;
            }
            let mut union = members[mg.a].clone();
            union.extend_from_slice(&members[mg.b]);
            members.push(union);
        }
    }
    assert!(
        within * 10 >= total * 8,
        "only {within}/{total} merges within (1+mu)^3"
    );
}

/// The facade knob routes through: a `scaffold_search(true)` hierarchy
/// session is bit-identical to a hand-wired scaffolded
/// `hier_oracle_par_stats` call, bills the same queries, and surfaces the
/// scaffold counters in `RunReport::merge_plane`.
#[test]
fn session_scaffold_knob_matches_direct_call_and_reports_counters() {
    use nco_oracle::SharedCounting;
    use noisy_oracle::metric::EuclideanMetric;
    use noisy_oracle::oracle::probabilistic::ProbQuadOracle;
    use noisy_oracle::{Noise, Session, Task};
    let s = MetricScenario::separated_blobs(4, 10, 30.0, 0x1AC9);
    let metric: EuclideanMetric = s.metric.clone();
    for (linkage, seed) in [(Linkage::Single, 3u64), (Linkage::Complete, 4u64)] {
        let session = Session::builder()
            .metric(noisy_oracle::data::AnyMetric::Euclidean(metric.clone()))
            .noise(Noise::Probabilistic {
                p: 0.05,
                seed: 4000 + seed,
            })
            .scaffold_search(true)
            .seed(seed)
            .build()
            .unwrap();
        let outcome = session.run(Task::Hierarchy { linkage }).unwrap();
        let mut oracle =
            SharedCounting::new(ProbQuadOracle::new(metric.clone(), 0.05, 4000 + seed));
        let (dend, stats) = hier_oracle_par_stats(
            &HierParams::experimental(linkage).scaffolded(),
            &mut oracle,
            &mut rng(seed),
            1,
        );
        assert_eq!(outcome.answer.dendrogram(), Some(&dend), "{linkage:?}");
        assert_eq!(outcome.report.queries, oracle.queries(), "{linkage:?}");
        let plane = outcome.report.merge_plane.expect("hierarchy reports plane");
        assert_eq!(plane, stats, "{linkage:?}");
        assert!(plane.scaffold_hits > 0, "{linkage:?}: {plane:?}");
    }
}

/// The plane stays opt-in: every constructor leaves `scaffold` off, so
/// default-path transcripts (and the byte-stable query counts `perfsuite`
/// pins for them) cannot change under this PR.
#[test]
fn scaffold_is_opt_in() {
    assert!(!HierParams::default().scaffold);
    assert!(!HierParams::experimental(Linkage::Complete).scaffold);
    assert!(!HierParams::with_confidence(Linkage::Single, 64, 0.1).scaffold);
    assert!(
        HierParams::experimental(Linkage::Single)
            .scaffolded()
            .scaffold
    );
}

fn linkage_dist(s: &MetricScenario, a: &[usize], b: &[usize]) -> f64 {
    let mut best = f64::INFINITY;
    for &x in a {
        for &y in b {
            best = best.min(s.metric.dist(x, y));
        }
    }
    best
}

fn best_available(s: &MetricScenario, members: &[Vec<usize>], next_id: usize) -> f64 {
    let bound = members.len().min(next_id);
    let mut live: Vec<usize> = Vec::new();
    for a in 0..bound {
        let covered = (0..bound).any(|b| {
            b != a
                && members[b].len() > members[a].len()
                && members[a].iter().all(|x| members[b].contains(x))
        });
        if !covered {
            live.push(a);
        }
    }
    let mut best = f64::INFINITY;
    for i in 0..live.len() {
        for j in (i + 1)..live.len() {
            best = best.min(linkage_dist(s, &members[live[i]], &members[live[j]]));
        }
    }
    best
}
