//! The facade crate exposes the full public API documented in the README:
//! this test is the README's usage contract, compiled and executed.

use noisy_oracle::core::comparator::{DistToQueryCmp, Rev, ValueCmp};
use noisy_oracle::core::hier::{hier_oracle, HierParams, Linkage};
use noisy_oracle::core::kcenter::{kcenter_adv, KCenterAdvParams};
use noisy_oracle::core::maxfind::{count_max, max_adv, min_adv, AdvParams};
use noisy_oracle::core::neighbor::{farthest_adv, nearest_adv};
use noisy_oracle::data::{amazon, caltech, cities, dblp, monuments};
use noisy_oracle::eval::{pair_f_score, run_reps, Summary, Table};
use noisy_oracle::metric::{EuclideanMetric, Metric};
use noisy_oracle::oracle::adversarial::{AdversarialQuadOracle, InvertAdversary};
use noisy_oracle::oracle::{Counting, TrueQuadOracle, TrueValueOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn every_dataset_generator_is_reachable_and_consistent() {
    let sets = [
        cities(200, 1),
        caltech(200, 1),
        amazon(200, 1),
        monuments(100, 1),
        dblp(200, 1),
    ];
    for d in &sets {
        assert!(d.n() >= 100, "{}", d.name);
        assert!(d.min_cluster_size >= 1);
        // Metric sanity through the facade path.
        assert!(d.metric.dist(0, 1) >= 0.0);
        assert_eq!(d.metric.dist(3, 3), 0.0);
    }
}

#[test]
fn readme_pipeline_compiles_and_runs() {
    // 1. Hidden values behind a comparison oracle.
    let mut value_oracle = TrueValueOracle::new((0..64).map(f64::from).collect());
    let items: Vec<usize> = (0..64).collect();
    let best = count_max(&items, &mut ValueCmp::new(&mut value_oracle)).unwrap();
    assert_eq!(best, 63);

    // 2. A metric behind a quadruplet oracle, farthest + nearest.
    let metric = EuclideanMetric::from_points(
        &(0..50)
            .map(|i| vec![(i as f64).sqrt(), (i % 7) as f64])
            .collect::<Vec<_>>(),
    );
    let mut rng = StdRng::seed_from_u64(0);
    let mut quad = Counting::new(TrueQuadOracle::new(metric));
    let far = farthest_adv(&mut quad, 0, &AdvParams::experimental(), &mut rng).unwrap();
    let near = nearest_adv(&mut quad, 0, &AdvParams::experimental(), &mut rng).unwrap();
    assert_ne!(far, near);
    assert!(quad.queries() > 0);

    // 3. Clustering under adversarial noise, scored against ground truth.
    let d = caltech(120, 3);
    let mut noisy = AdversarialQuadOracle::new(&d.metric, 0.5, InvertAdversary);
    let clustering = kcenter_adv(
        &KCenterAdvParams::with_confidence(20, 0.1),
        &mut noisy,
        &mut rng,
    );
    let f = pair_f_score(clustering.labels(), d.labels.as_ref().unwrap());
    assert!(f.f1 > 0.5);

    // 4. A hierarchy, cut and scored.
    let mut noisy = AdversarialQuadOracle::new(&d.metric, 0.5, InvertAdversary);
    let dend = hier_oracle(
        &HierParams::experimental(Linkage::Single),
        &mut noisy,
        &mut rng,
    );
    assert_eq!(dend.cut(20).len(), 120);

    // 5. Harness utilities.
    let stats = run_reps(3, 0, |seed| noisy_oracle::eval::experiment::RepOutcome {
        value: seed as f64,
        queries: 1,
    });
    assert_eq!(stats.value.n, 3);
    let s = Summary::of(&[1.0, 2.0]);
    let mut t = Table::new("t", &["a"]);
    t.row(&[format!("{:.1}", s.mean)]);
    assert!(t.to_csv().contains("1.5"));
}

/// The README's Session quickstart, compiled and executed: build,
/// run, report, budget failure, shared engine.
#[test]
fn readme_session_front_door() {
    use noisy_oracle::{Engine, NcoError, Noise, Session, Task};

    let session = Session::builder()
        .values((1..=100).map(f64::from).collect())
        .noise(Noise::Adversarial { mu: 0.5 })
        .confidence(0.05)
        .budget(200_000)
        .seed(7)
        .build()
        .unwrap();
    let outcome = session.run(Task::Max).unwrap();
    let best = outcome.answer.item().unwrap();
    assert!(best as f64 + 1.0 >= 100.0 / 1.5f64.powi(3));
    assert!(outcome.report.queries > 0);
    assert_eq!(outcome.report.budget, Some(200_000));

    // A starved budget fails typed.
    let capped = Session::builder()
        .values((1..=100).map(f64::from).collect())
        .budget(10)
        .build()
        .unwrap();
    assert!(matches!(
        capped.run(Task::Max),
        Err(NcoError::BudgetExceeded { budget: 10, .. })
    ));

    // One engine, several sessions, shared distance cache.
    let d = caltech(120, 3);
    let engine = Engine::from_dataset(&d, true);
    for (seed, k) in [(1u64, 4usize), (2, 8)] {
        let s = Session::builder()
            .engine(engine.clone())
            .noise(Noise::Adversarial { mu: 0.5 })
            .seed(seed)
            .build()
            .unwrap();
        let c = s.run(Task::KCenter { k }).unwrap();
        assert_eq!(c.answer.clustering().unwrap().k(), k);
    }
    assert!(engine.cache_entries().unwrap() > 0);
}

#[test]
fn min_and_rev_are_consistent() {
    let metric = EuclideanMetric::from_points(&(0..40).map(|i| vec![i as f64]).collect::<Vec<_>>());
    let mut quad = TrueQuadOracle::new(metric);
    let items: Vec<usize> = (1..40).collect();
    let mut rng = StdRng::seed_from_u64(5);
    let a = min_adv(
        &items,
        &AdvParams::experimental(),
        &mut DistToQueryCmp::new(&mut quad, 0),
        &mut rng,
    )
    .unwrap();
    let b = max_adv(
        &items,
        &AdvParams::experimental(),
        &mut Rev(DistToQueryCmp::new(&mut quad, 0)),
        &mut rng,
    )
    .unwrap();
    // Both are "the nearest to 0" under a perfect oracle.
    assert_eq!(a, 1);
    assert_eq!(b, 1);
}
