//! Cross-crate integration: the simulated user study (Section 6.2) —
//! bucketised crowd accuracy (Figure 4's heatmap input) and the
//! noise-model identification the paper performs on top of it.

use noisy_oracle::data::{amazon, caltech};
use noisy_oracle::metric::stats::Buckets;
use noisy_oracle::metric::Metric;
use noisy_oracle::oracle::crowd::{AccuracyProfile, CrowdQuadOracle};
use noisy_oracle::oracle::QuadrupletOracle;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Measures the crowd accuracy matrix over distance-bucket pairs, exactly
/// like the Figure 4 harness.
fn accuracy_matrix<M: Metric + Clone>(
    metric: &M,
    profile: AccuracyProfile,
    buckets: usize,
    queries_per_cell: usize,
    seed: u64,
) -> Vec<Vec<Option<f64>>> {
    let n = metric.len();
    let diameter = noisy_oracle::metric::stats::diameter(metric);
    let b = Buckets::equal_width(diameter, buckets);
    let mut crowd = CrowdQuadOracle::new(metric.clone(), profile, 3, seed);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xf19);

    let mut hits = vec![vec![0usize; buckets]; buckets];
    let mut total = vec![vec![0usize; buckets]; buckets];
    let mut attempts = 0usize;
    while attempts < queries_per_cell * buckets * buckets * 4 {
        attempts += 1;
        let (a, b1, c, d) = (
            rng.random_range(0..n),
            rng.random_range(0..n),
            rng.random_range(0..n),
            rng.random_range(0..n),
        );
        if a == b1 || c == d || (a.min(b1), a.max(b1)) == (c.min(d), c.max(d)) {
            continue;
        }
        let d1 = metric.dist(a, b1);
        let d2 = metric.dist(c, d);
        let (i, j) = (b.index_of(d1), b.index_of(d2));
        if total[i][j] >= queries_per_cell {
            continue;
        }
        total[i][j] += 1;
        let truth = d1 <= d2;
        if crowd.le(a, b1, c, d) == truth {
            hits[i][j] += 1;
        }
    }
    (0..buckets)
        .map(|i| {
            (0..buckets)
                .map(|j| {
                    if total[i][j] < queries_per_cell / 2 {
                        None
                    } else {
                        Some(hits[i][j] as f64 / total[i][j] as f64)
                    }
                })
                .collect()
        })
        .collect()
}

/// Cells whose bucket indices are at least two apart (well-separated
/// distance ranges).
fn separated_cells(m: &[Vec<Option<f64>>]) -> Vec<Option<f64>> {
    m.iter()
        .enumerate()
        .flat_map(|(i, row)| {
            row.iter()
                .enumerate()
                .filter(move |(j, _)| i.abs_diff(*j) >= 2)
                .map(|(_, c)| *c)
        })
        .collect()
}

fn mean_of(cells: &[Option<f64>]) -> Option<f64> {
    let xs: Vec<f64> = cells.iter().flatten().copied().collect();
    if xs.is_empty() {
        None
    } else {
        Some(xs.iter().sum::<f64>() / xs.len() as f64)
    }
}

#[test]
fn figure_4a_caltech_diagonal_is_noisy_off_diagonal_is_clean() {
    let d = caltech(240, 3);
    let m = accuracy_matrix(&d.metric, AccuracyProfile::caltech_like(), 6, 40, 7);
    // Diagonal cells (same bucket => comparable distances) are noisy...
    let diag: Vec<Option<f64>> = (0..6).map(|i| m[i][i]).collect();
    let diag_mean = mean_of(&diag).expect("diagonal populated");
    assert!(
        diag_mean < 0.85,
        "diagonal accuracy {diag_mean:.3} should be noisy"
    );
    // ...while well-separated bucket pairs are answered near-perfectly
    // (the sharp cliff the paper reads as the adversarial model).
    let far_cells = separated_cells(&m);
    let far_mean = mean_of(&far_cells).expect("off-diagonal populated");
    assert!(
        far_mean > 0.95,
        "off-diagonal accuracy {far_mean:.3} should be clean"
    );
}

#[test]
fn figure_4b_amazon_noise_persists_at_all_ranges() {
    let d = amazon(240, 3);
    let m = accuracy_matrix(&d.metric, AccuracyProfile::amazon_like(), 6, 150, 9);
    let mut all = Vec::new();
    for row in &m {
        all.extend(row.iter().copied());
    }
    let overall = mean_of(&all).unwrap();
    // Average accuracy above 0.8 (paper: "more than 0.83") but *no* clean
    // region: even separated buckets stay below 0.95.
    assert!(overall > 0.75, "overall accuracy {overall:.3}");
    let far_cells = separated_cells(&m);
    let far_mean = mean_of(&far_cells).unwrap();
    // Majority-of-3 over flat 0.83 accuracy is ~0.92 at *every* range — the
    // signature of the probabilistic model (vs. caltech's ~1.0 beyond the
    // cliff).
    assert!(
        far_mean < 0.97,
        "amazon must stay noisy at all ranges, got {far_mean:.3} off-diagonal"
    );
}

#[test]
fn noise_model_identification_matches_the_paper() {
    // The paper's §6.3 rule: sharp cliff => adversarial algorithms;
    // flat noise => probabilistic algorithms. Verify the two profiles are
    // distinguishable by the same statistic it uses (accuracy beyond the
    // 1.45 ratio cliff).
    let caltech_beyond = AccuracyProfile::caltech_like().accuracy(2.0);
    let amazon_beyond = AccuracyProfile::amazon_like().accuracy(2.0);
    assert!(caltech_beyond > 0.99);
    assert!(amazon_beyond < 0.9);
}
