//! Cross-crate integration: k-center pipelines over generated datasets,
//! scored with the evaluation crate — data -> oracle -> core -> eval.

use noisy_oracle::core::kcenter::baselines::{kcenter_samp, kcenter_tour2};
use noisy_oracle::core::kcenter::{
    gonzalez, kcenter_adv, kcenter_prob, KCenterAdvParams, KCenterProbParams,
};
use noisy_oracle::data::{caltech, monuments};
use noisy_oracle::eval::pair_f_score;
use noisy_oracle::metric::stats::kcenter_objective;
use noisy_oracle::oracle::adversarial::{AdversarialQuadOracle, InvertAdversary};
use noisy_oracle::oracle::crowd::{AccuracyProfile, CrowdQuadOracle};
use noisy_oracle::oracle::probabilistic::ProbQuadOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn adversarial_kcenter_tracks_tdist_on_cities_scale_data() {
    let d = noisy_oracle::data::cities(400, 11);
    let metric = &d.metric;
    let k = 13; // metros + outpost
    let g = gonzalez(metric, k, Some(0));
    let g_obj = kcenter_objective(metric, &g.centers, &g.assignment);

    let mut within = 0;
    let trials = 5;
    for seed in 0..trials {
        let mut o = AdversarialQuadOracle::new(metric, 0.5, InvertAdversary);
        let params = KCenterAdvParams {
            first_center: Some(0),
            ..KCenterAdvParams::with_confidence(k, 0.1)
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let c = kcenter_adv(&params, &mut o, &mut rng);
        c.validate();
        let obj = kcenter_objective(metric, &c.centers, &c.assignment);
        if obj <= 4.0 * g_obj {
            within += 1;
        }
    }
    assert!(
        within >= trials - 1,
        "only {within}/{trials} within 4x of TDist"
    );
}

#[test]
fn crowd_oracle_kcenter_recovers_caltech_categories() {
    // Table 1's headline: kC hits F-score ~1.0 on caltech with the crowd
    // oracle at k = 20.
    let d = caltech(300, 5);
    let truth = d.labels.as_ref().unwrap();
    let mut o = CrowdQuadOracle::new(&d.metric, AccuracyProfile::caltech_like(), 3, 77);
    let params = KCenterAdvParams::with_confidence(20, 0.1);
    let mut rng = StdRng::seed_from_u64(5);
    let c = kcenter_adv(&params, &mut o, &mut rng);
    let f = pair_f_score(c.labels(), truth);
    assert!(f.f1 >= 0.85, "caltech F-score {:.3}", f.f1);
}

#[test]
fn probabilistic_kcenter_beats_baselines_on_monuments() {
    let d = monuments(100, 4);
    let truth = d.labels.as_ref().unwrap();
    let p = 0.15;

    let mut f_ours = Vec::new();
    let mut f_tour = Vec::new();
    let mut f_samp = Vec::new();
    for seed in 0..5u64 {
        let mut o = ProbQuadOracle::new(&d.metric, p, 900 + seed);
        let params = KCenterProbParams {
            gamma: 8.0,
            ..KCenterProbParams::experimental(10, d.min_cluster_size)
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let c = kcenter_prob(&params, &mut o, &mut rng);
        c.validate();
        f_ours.push(pair_f_score(c.labels(), truth).f1);

        let mut o = ProbQuadOracle::new(&d.metric, p, 900 + seed);
        let c = kcenter_tour2(10, None, &mut o, &mut rng);
        f_tour.push(pair_f_score(c.labels(), truth).f1);

        let mut o = ProbQuadOracle::new(&d.metric, p, 900 + seed);
        let c = kcenter_samp(10, None, &mut o, &mut rng);
        f_samp.push(pair_f_score(c.labels(), truth).f1);
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    assert!(mean(&f_ours) >= 0.8, "ours {:.3}", mean(&f_ours));
    assert!(
        mean(&f_ours) >= mean(&f_tour) - 0.05,
        "ours {:.3} vs tour2 {:.3}",
        mean(&f_ours),
        mean(&f_tour)
    );
    assert!(
        mean(&f_ours) >= mean(&f_samp) - 0.05,
        "ours {:.3} vs samp {:.3}",
        mean(&f_ours),
        mean(&f_samp)
    );
}

#[test]
fn all_points_covered_and_clusterings_valid_across_pipelines() {
    let d = caltech(120, 2);
    let mut rng = StdRng::seed_from_u64(1);

    let mut o = AdversarialQuadOracle::new(&d.metric, 1.0, InvertAdversary);
    let adv = kcenter_adv(&KCenterAdvParams::experimental(6), &mut o, &mut rng);
    adv.validate();
    assert_eq!(adv.n(), 120);

    let mut o = ProbQuadOracle::new(&d.metric, 0.2, 3);
    let prob = kcenter_prob(
        &KCenterProbParams::experimental(6, d.min_cluster_size),
        &mut o,
        &mut rng,
    );
    prob.validate();
    assert_eq!(prob.n(), 120);

    let mut o = ProbQuadOracle::new(&d.metric, 0.2, 3);
    let t2 = kcenter_tour2(6, None, &mut o, &mut rng);
    t2.validate();

    let mut o = ProbQuadOracle::new(&d.metric, 0.2, 3);
    let sp = kcenter_samp(6, None, &mut o, &mut rng);
    sp.validate();
}
