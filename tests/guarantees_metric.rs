//! Deterministic guarantee tests for the metric-space pipelines (farthest
//! and nearest neighbour, k-center, hierarchical clustering) across all
//! three noise models — adversarial, probabilistic persistent, and crowd —
//! built on `nco_testkit`.
//!
//! Seeds are fixed everywhere: two consecutive `cargo test` runs are
//! identical. Guarantees that hold "w.h.p." are asserted as success rates
//! over seeded trial blocks.

use nco_core::hier::{hier_oracle, HierParams, Linkage};
use nco_core::kcenter::{gonzalez, kcenter_adv, kcenter_prob, KCenterAdvParams, KCenterProbParams};
use nco_core::maxfind::AdvParams;
use nco_core::neighbor::{farthest_adv, farthest_prob, nearest_adv, nearest_prob};
use nco_eval::pair_f_score;
use nco_metric::stats::{farthest_rank, kcenter_objective, nearest_rank};
use nco_metric::Metric;
use nco_oracle::crowd::AccuracyProfile;
use nco_testkit::{assert_kcenter_constant_factor, success_rate, Counting, MetricScenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn blobs() -> MetricScenario {
    MetricScenario::separated_blobs(4, 40, 70.0, 0x5EED)
}

/// Theorem 3.10 (farthest neighbour, adversarial): the returned point's
/// distance from the query is within `(1 + mu)^3` of the true farthest
/// distance, across noise levels.
#[test]
fn farthest_adv_theorem_3_10_bound_across_noise_levels() {
    let s = blobs();
    let q = 0;
    let true_far = s.true_farthest_dist(q);
    for &mu in &[0.3, 0.8] {
        let rate = success_rate(8, 100, |seed| {
            let mut oracle = s.adversarial_oracle(mu);
            let got = farthest_adv(
                &mut oracle,
                q,
                &AdvParams::with_confidence(0.1),
                &mut rng(seed),
            )
            .unwrap();
            s.metric.dist(q, got) * (1.0 + mu).powi(3) >= true_far - 1e-9
        });
        assert!(
            rate >= 0.9,
            "mu = {mu}: farthest bound held in only {rate} of trials"
        );
    }
}

/// Nearest-neighbour twin: returned distance at most `(1 + mu)^3` times
/// the true nearest distance.
#[test]
fn nearest_adv_bound_across_noise_levels() {
    let s = blobs();
    let q = 3;
    let true_near = s.true_nearest_dist(q);
    for &mu in &[0.3, 0.8] {
        let rate = success_rate(8, 130, |seed| {
            let mut oracle = s.adversarial_oracle(mu);
            let got = nearest_adv(
                &mut oracle,
                q,
                &AdvParams::with_confidence(0.1),
                &mut rng(seed),
            )
            .unwrap();
            s.metric.dist(q, got) <= true_near * (1.0 + mu).powi(3) + 1e-9
        });
        assert!(
            rate >= 0.9,
            "mu = {mu}: nearest bound held in only {rate} of trials"
        );
    }
}

/// Probabilistic persistent noise (Lemma 3.9 pipeline): the core-voted
/// farthest search keeps the returned point's *rank* small at two noise
/// levels.
#[test]
fn farthest_prob_rank_across_noise_levels() {
    let s = blobs();
    let q = 10;
    for &p in &[0.1, 0.2] {
        let rate = success_rate(8, 160, |seed| {
            let mut oracle = s.probabilistic_oracle(p, 3000 + seed);
            let got = farthest_prob(
                &mut oracle,
                q,
                0.1,
                &AdvParams::experimental(),
                &mut rng(seed),
            )
            .unwrap();
            // Any point of the diametrically opposite blob is near-optimal;
            // rank <= 40 means "inside the farthest blob".
            farthest_rank(&s.metric, q, got) <= 40
        });
        assert!(
            rate >= 0.9,
            "p = {p}: farthest-prob rank held in only {rate} of trials"
        );
    }
}

/// Nearest twin under persistent noise: the returned point stays inside
/// the query's own blob (rank <= 39 of 159 candidates).
#[test]
fn nearest_prob_rank_across_noise_levels() {
    let s = blobs();
    let q = 25;
    for &p in &[0.1, 0.2] {
        let rate = success_rate(8, 190, |seed| {
            let mut oracle = s.probabilistic_oracle(p, 5000 + seed);
            let got = nearest_prob(
                &mut oracle,
                q,
                0.1,
                &AdvParams::experimental(),
                &mut rng(seed),
            )
            .unwrap();
            nearest_rank(&s.metric, q, got) <= 39
        });
        assert!(
            rate >= 0.9,
            "p = {p}: nearest-prob rank held in only {rate} of trials"
        );
    }
}

/// Crowd noise (the Section 6.2 user-study model): worker accuracy is a
/// function of the distance ratio, so on well-separated blobs the farthest
/// search lands in the right blob essentially always.
#[test]
fn farthest_under_crowd_oracle_lands_in_opposite_blob() {
    let s = blobs();
    let q = 5;
    let rate = success_rate(8, 220, |seed| {
        let mut oracle = s.crowd_oracle(AccuracyProfile::monuments_like(), 8800 + seed);
        let got = farthest_adv(&mut oracle, q, &AdvParams::experimental(), &mut rng(seed)).unwrap();
        farthest_rank(&s.metric, q, got) <= 40
    });
    assert!(rate >= 0.9, "crowd farthest held in only {rate} of trials");
}

/// Theorem 4.2 (k-center, adversarial): the greedy-with-Approx-Farthest
/// clustering stays within a constant factor of the Gonzalez reference
/// objective at two noise levels.
#[test]
fn kcenter_adv_theorem_4_2_constant_factor() {
    let s = blobs();
    let g = gonzalez(&s.metric, 4, Some(0));
    let g_obj = kcenter_objective(&s.metric, &g.centers, &g.assignment);
    for &mu in &[0.3, 0.8] {
        let rate = success_rate(8, 250, |seed| {
            let mut oracle = s.adversarial_oracle(mu);
            let c = kcenter_adv(
                &KCenterAdvParams::experimental(4),
                &mut oracle,
                &mut rng(seed),
            );
            kcenter_objective(&s.metric, &c.centers, &c.assignment) <= 8.0 * g_obj.max(1.0)
        });
        assert!(
            rate >= 0.85,
            "mu = {mu}: k-center factor held in only {rate} of trials"
        );
    }
}

/// Theorem 4.4 (k-center, probabilistic): the sampled algorithm with cores
/// stays within a constant factor of Gonzalez, and recovers the planted
/// blobs with high pair-counting F-score.
#[test]
fn kcenter_prob_theorem_4_4_factor_and_fscore() {
    let s = blobs();
    let g = gonzalez(&s.metric, 4, Some(0));
    let g_obj = kcenter_objective(&s.metric, &g.centers, &g.assignment);
    for &p in &[0.1, 0.2] {
        let rate = success_rate(8, 280, |seed| {
            let mut oracle = s.probabilistic_oracle(p, 6000 + seed);
            let params = KCenterProbParams {
                gamma: 8.0,
                ..KCenterProbParams::experimental(4, 40)
            };
            let c = kcenter_prob(&params, &mut oracle, &mut rng(seed));
            let obj_ok =
                kcenter_objective(&s.metric, &c.centers, &c.assignment) <= 8.0 * g_obj.max(1.0);
            let f = pair_f_score(&c.assignment, &s.labels).f1;
            obj_ok && f >= 0.9
        });
        assert!(
            rate >= 0.75,
            "p = {p}: k-center-prob held in only {rate} of trials"
        );
    }
}

/// The exact-oracle degenerate case pins the Theorem 4.4 guarantee hard:
/// no trial may exceed the constant factor, every run must be intra-blob.
#[test]
fn kcenter_prob_exact_oracle_always_recovers() {
    let s = blobs();
    for seed in 0..6 {
        let mut oracle = s.exact_oracle();
        let params = KCenterProbParams {
            first_center: Some(0),
            ..KCenterProbParams::experimental(4, 40)
        };
        let c = kcenter_prob(&params, &mut oracle, &mut rng(seed));
        let g = gonzalez(&s.metric, 4, Some(0));
        assert_kcenter_constant_factor(
            &s.metric,
            &c.centers,
            &c.assignment,
            kcenter_objective(&s.metric, &g.centers, &g.assignment),
            3.0,
            &format!("kcenter_prob exact, seed {seed}"),
        );
    }
}

/// Theorem 5.2 (hierarchical clustering, adversarial): cutting the noisy
/// single-linkage dendrogram at the planted k recovers the blobs.
#[test]
fn hier_oracle_adversarial_recovers_planted_partition() {
    let s = MetricScenario::separated_blobs(4, 30, 70.0, 0x111E);
    for &mu in &[0.3, 0.6] {
        let rate = success_rate(6, 310, |seed| {
            let mut oracle = s.adversarial_oracle(mu);
            let d = hier_oracle(
                &HierParams::experimental(Linkage::Single),
                &mut oracle,
                &mut rng(seed),
            );
            let cut = d.cut(4);
            pair_f_score(&cut, &s.labels).f1 >= 0.95
        });
        assert!(
            rate >= 0.8,
            "mu = {mu}: hierarchy F-score held in only {rate} of trials"
        );
    }
}

/// Hierarchical clustering under persistent probabilistic noise. A single
/// persistent lie can chain two blobs through one bad merge, so per-run
/// F-score is bimodal (perfect or ~0.75 with one pair of blobs fused);
/// the guarantee worth pinning is the distribution: median perfect, floor
/// no worse than one fused pair.
#[test]
fn hier_oracle_probabilistic_recovers_planted_partition() {
    let s = MetricScenario::separated_blobs(4, 30, 70.0, 0x111F);
    let mut scores: Vec<f64> = (0..12u64)
        .map(|seed| {
            let mut oracle = s.probabilistic_oracle(0.1, 7000 + seed);
            let d = hier_oracle(
                &HierParams::experimental(Linkage::Single),
                &mut oracle,
                &mut rng(340 + seed),
            );
            pair_f_score(&d.cut(4), &s.labels).f1
        })
        .collect();
    scores.sort_by(f64::total_cmp);
    assert!(
        scores[scores.len() / 2] >= 0.95,
        "median F-score too low: {scores:?}"
    );
    assert!(
        scores[0] >= 0.7,
        "worst F-score below one-fused-pair floor: {scores:?}"
    );
}

/// Query metering through the full k-center pipeline: the probabilistic
/// algorithm's oracle budget is `O(nk log(n/delta) + (n/m)^2 k log^2)` —
/// at this instance size, far below brute force `n^2 k`.
#[test]
fn kcenter_prob_query_budget() {
    let s = blobs();
    let n = s.n() as u64;
    let mut oracle = Counting::new(s.probabilistic_oracle(0.1, 42));
    let params = KCenterProbParams::experimental(4, 40);
    let _ = kcenter_prob(&params, &mut oracle, &mut rng(21));
    let budget = 4 * n * n; // loose: k * n^2 would be brute force's order
    assert!(
        oracle.queries() <= budget,
        "{} queries exceed {budget}",
        oracle.queries()
    );
}

/// Cross-pipeline reproducibility: identically-seeded runs of the three
/// metric pipelines return identical structures.
#[test]
fn metric_pipelines_are_bit_reproducible() {
    let s = blobs();
    nco_testkit::assert_deterministic("farthest_adv seed 11", || {
        let mut oracle = s.adversarial_oracle(0.5);
        farthest_adv(&mut oracle, 2, &AdvParams::experimental(), &mut rng(11))
    });
    nco_testkit::assert_deterministic("kcenter_prob seed 13", || {
        let mut oracle = s.probabilistic_oracle(0.15, 99);
        let c = kcenter_prob(
            &KCenterProbParams::experimental(4, 40),
            &mut oracle,
            &mut rng(13),
        );
        (c.centers.clone(), c.assignment.clone())
    });
    nco_testkit::assert_deterministic("hier_oracle seed 17", || {
        let mut oracle = s.probabilistic_oracle(0.1, 7);
        let d = hier_oracle(
            &HierParams::experimental(Linkage::Single),
            &mut oracle,
            &mut rng(17),
        );
        d.cut(4)
    });
}
