//! Cross-crate integration: agglomerative clustering pipelines scored by
//! per-merge true linkage distances (Figure 7's measure).

use noisy_oracle::core::hier::baselines::{hier_samp, hier_tour2, Tour2Outcome};
use noisy_oracle::core::hier::{hier_exact, hier_oracle, HierParams, Linkage};
use noisy_oracle::data::{amazon, monuments};
use noisy_oracle::eval::hier_eval::mean_merge_distance;
use noisy_oracle::eval::pair_f_score;
use noisy_oracle::oracle::adversarial::{AdversarialQuadOracle, InvertAdversary};
use noisy_oracle::oracle::crowd::{AccuracyProfile, CrowdQuadOracle};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn oracle_hierarchy_stays_close_to_exact_merge_quality() {
    let d = amazon(150, 9);
    let metric = &d.metric;
    for linkage in [Linkage::Single, Linkage::Complete] {
        let exact = hier_exact(metric, linkage);
        let base = mean_merge_distance(&exact, metric, linkage);

        let mut o = AdversarialQuadOracle::new(metric, 0.3, InvertAdversary);
        let mut rng = StdRng::seed_from_u64(4);
        let ours = hier_oracle(&HierParams::experimental(linkage), &mut o, &mut rng);
        let ours_d = mean_merge_distance(&ours, metric, linkage);
        // Theorem 5.2: per-merge loss (1+mu)^3 = 2.2; the mean stays well
        // inside that envelope.
        assert!(
            ours_d <= base * (1.3f64).powi(3) + 1e-9,
            "{linkage:?}: {ours_d:.3} vs exact {base:.3}"
        );
    }
}

#[test]
fn hierarchy_cut_recovers_monument_sites_under_crowd_noise() {
    let d = monuments(100, 7);
    let truth = d.labels.as_ref().unwrap();
    let mut o = CrowdQuadOracle::new(&d.metric, AccuracyProfile::monuments_like(), 3, 13);
    let mut rng = StdRng::seed_from_u64(2);
    let dend = hier_oracle(&HierParams::experimental(Linkage::Single), &mut o, &mut rng);
    let f = pair_f_score(&dend.cut(10), truth);
    assert!(f.f1 >= 0.9, "monuments single-linkage cut F {:.3}", f.f1);
}

#[test]
fn tour2_dnf_behaviour_reproduces_table_2() {
    // Tour2 HC is cubic; at a budget that comfortably covers our algorithm
    // it cannot finish, mirroring the DNF entries of Table 2.
    let d = amazon(150, 3);
    let metric = &d.metric;
    let n = 150u64;

    let mut o = noisy_oracle::oracle::counting::Counting::new(AdversarialQuadOracle::new(
        metric,
        0.5,
        InvertAdversary,
    ));
    let mut rng = StdRng::seed_from_u64(8);
    let ours = hier_oracle(&HierParams::experimental(Linkage::Single), &mut o, &mut rng);
    assert_eq!(ours.merges.len() as u64, n - 1);
    let our_queries = o.queries();

    let mut o = AdversarialQuadOracle::new(metric, 0.5, InvertAdversary);
    match hier_tour2(Linkage::Single, our_queries, &mut o, &mut rng) {
        Tour2Outcome::DidNotFinish { merges_done, .. } => {
            assert!(merges_done < (n - 1) as usize);
        }
        Tour2Outcome::Finished(_) => {
            panic!("Tour2 should not finish within our query budget ({our_queries})")
        }
    }
}

#[test]
fn samp_hierarchy_merges_are_measurably_worse() {
    let d = monuments(80, 5);
    let metric = &d.metric;
    let exact = hier_exact(metric, Linkage::Single);
    let base = mean_merge_distance(&exact, metric, Linkage::Single);

    let mut ours_sum = 0.0;
    let mut samp_sum = 0.0;
    for seed in 0..5u64 {
        let mut o = CrowdQuadOracle::new(metric, AccuracyProfile::monuments_like(), 3, seed);
        let mut rng = StdRng::seed_from_u64(seed);
        ours_sum += mean_merge_distance(
            &hier_oracle(&HierParams::experimental(Linkage::Single), &mut o, &mut rng),
            metric,
            Linkage::Single,
        );
        let mut o = CrowdQuadOracle::new(metric, AccuracyProfile::monuments_like(), 3, seed);
        samp_sum += mean_merge_distance(
            &hier_samp(Linkage::Single, &mut o, &mut rng),
            metric,
            Linkage::Single,
        );
    }
    assert!(
        ours_sum <= samp_sum,
        "ours {ours_sum:.3} should beat Samp {samp_sum:.3} (exact {base:.3})"
    );
}

#[test]
fn dendrogram_cuts_partition_at_every_k() {
    let d = amazon(90, 1);
    let mut o = AdversarialQuadOracle::new(&d.metric, 1.0, InvertAdversary);
    let mut rng = StdRng::seed_from_u64(3);
    let dend = hier_oracle(
        &HierParams::experimental(Linkage::Complete),
        &mut o,
        &mut rng,
    );
    dend.validate();
    for k in [1usize, 2, 7, 14, 45, 90] {
        let labels = dend.cut(k);
        assert_eq!(labels.len(), 90);
        let distinct: std::collections::HashSet<usize> = labels.iter().copied().collect();
        assert_eq!(distinct.len(), k, "cut at k = {k}");
    }
}
