//! Cross-crate integration: maximum finding through the facade, with the
//! theorem-grade bounds checked end to end (oracle crate -> core crate ->
//! eval crate).

use noisy_oracle::core::comparator::ValueCmp;
use noisy_oracle::core::maxfind::{max_adv, max_prob, AdvParams, ProbParams};
use noisy_oracle::eval::rank::{max_approx_ratio, max_rank};
use noisy_oracle::oracle::adversarial::{
    AdversarialValueOracle, ConsistentAdversary, InvertAdversary, PersistentRandomAdversary,
};
use noisy_oracle::oracle::counting::Counting;
use noisy_oracle::oracle::probabilistic::ProbValueOracle;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn crowded_values(n: usize, mu: f64) -> Vec<f64> {
    // A dense geometric ladder: every adjacent pair is inside the band.
    (0..n)
        .map(|i| (1.0 + mu * 0.3).powi((i % 48) as i32) * (1.0 + i as f64 * 1e-5))
        .collect()
}

#[test]
fn theorem_3_6_holds_for_every_adversary_strategy() {
    let n = 400usize;
    let mu = 0.6;
    let values = crowded_values(n, mu);
    let items: Vec<usize> = (0..n).collect();
    let params = AdvParams::with_confidence(0.1);
    let bound = (1.0 + mu).powi(3) + 1e-9;

    let mut failures = 0usize;
    let trials = 20u64;
    for seed in 0..trials {
        // Invert (worst case).
        let mut o = AdversarialValueOracle::new(values.clone(), mu, InvertAdversary);
        let mut rng = StdRng::seed_from_u64(seed);
        let got = max_adv(&items, &params, &mut ValueCmp::new(&mut o), &mut rng).unwrap();
        if max_approx_ratio(&values, got) > bound {
            failures += 1;
        }
        // Persistent random liar.
        let mut o =
            AdversarialValueOracle::new(values.clone(), mu, PersistentRandomAdversary::new(seed));
        let mut rng = StdRng::seed_from_u64(1000 + seed);
        let got = max_adv(&items, &params, &mut ValueCmp::new(&mut o), &mut rng).unwrap();
        if max_approx_ratio(&values, got) > bound {
            failures += 1;
        }
        // Consistent (systematically biased) comparator.
        let mut o =
            AdversarialValueOracle::new(values.clone(), mu, ConsistentAdversary::new(seed, mu));
        let mut rng = StdRng::seed_from_u64(2000 + seed);
        let got = max_adv(&items, &params, &mut ValueCmp::new(&mut o), &mut rng).unwrap();
        if max_approx_ratio(&values, got) > bound {
            failures += 1;
        }
    }
    // 60 runs at delta = 0.1: allow a generous 12 failures.
    assert!(
        failures <= 12,
        "{failures}/60 runs broke the (1+mu)^3 bound"
    );
}

#[test]
fn max_adv_query_budget_matches_theorem() {
    for n in [500usize, 2000, 8000] {
        let values: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let mut o = Counting::new(AdversarialValueOracle::new(values, 0.5, InvertAdversary));
        let items: Vec<usize> = (0..n).collect();
        let delta = 0.05f64;
        let mut rng = StdRng::seed_from_u64(3);
        let _ = max_adv(
            &items,
            &AdvParams::with_confidence(delta),
            &mut ValueCmp::new(&mut o),
            &mut rng,
        );
        let log = (1.0 / delta).log2();
        let budget = (20.0 * n as f64 * log * log) as u64;
        assert!(o.queries() <= budget, "n={n}: {} > {budget}", o.queries());
    }
}

#[test]
fn theorem_3_7_rank_is_polylog_across_noise_levels() {
    let n = 1000usize;
    let values: Vec<f64> = (0..n).map(|i| ((i * 37) % n) as f64).collect();
    let items: Vec<usize> = (0..n).collect();
    for p in [0.1, 0.2, 0.3] {
        let mut worst_rank = 0usize;
        for seed in 0..8u64 {
            let mut o = ProbValueOracle::new(values.clone(), p, 5000 + seed);
            let mut rng = StdRng::seed_from_u64(seed);
            let got = max_prob(
                &items,
                &ProbParams::experimental(),
                &mut ValueCmp::new(&mut o),
                &mut rng,
            )
            .unwrap();
            worst_rank = worst_rank.max(max_rank(&values, got));
        }
        // log2(1000)^2 ≈ 99.3; the experimental constants do much better.
        assert!(worst_rank <= 100, "p={p}: worst rank {worst_rank}");
    }
}

#[test]
fn perfect_oracles_are_exact_end_to_end() {
    let n = 300usize;
    let values: Vec<f64> = (0..n).map(|i| ((i * 7919) % 104729) as f64).collect();
    let true_best = (0..n)
        .max_by(|&a, &b| values[a].total_cmp(&values[b]))
        .unwrap();
    let items: Vec<usize> = (0..n).collect();

    let mut o = AdversarialValueOracle::new(values.clone(), 0.0, InvertAdversary);
    let mut rng = StdRng::seed_from_u64(1);
    let got = max_adv(
        &items,
        &AdvParams::experimental(),
        &mut ValueCmp::new(&mut o),
        &mut rng,
    )
    .unwrap();
    assert_eq!(got, true_best, "mu = 0 must be exact");

    let mut o = ProbValueOracle::new(values.clone(), 0.0, 9);
    let mut rng = StdRng::seed_from_u64(2);
    let got = max_prob(
        &items,
        &ProbParams::experimental(),
        &mut ValueCmp::new(&mut o),
        &mut rng,
    )
    .unwrap();
    // p = 0 still discards sampled items; rank must be tiny regardless.
    assert!(max_rank(&values, got) <= 15);
}
