//! Degenerate-input hardening sweep: every pathological data shape the
//! session front door can receive — NaN/∞ coordinates, all-duplicate
//! records, single-record corpora, out-of-range task parameters, empty
//! inputs — must surface as a typed [`NcoError`] or a well-defined
//! answer. Nothing in this file is allowed to panic.

use noisy_oracle::core::hier::Linkage;
use noisy_oracle::oracle::crowd::AccuracyProfile;
use noisy_oracle::{NcoError, Noise, Session, Task};

fn all_noises() -> [Noise; 4] {
    [
        Noise::Exact,
        Noise::Adversarial { mu: 0.5 },
        Noise::Probabilistic { p: 0.2, seed: 11 },
        Noise::Crowd {
            profile: AccuracyProfile::amazon_like(),
            workers: 5,
            seed: 11,
        },
    ]
}

fn metric_tasks() -> [Task; 4] {
    [
        Task::KCenter { k: 3 },
        Task::Nearest { q: 0 },
        Task::Farthest { q: 0 },
        Task::Hierarchy {
            linkage: Linkage::Single,
        },
    ]
}

#[test]
fn nan_and_inf_coordinates_are_rejected_at_build() {
    let mut nan_points: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, 0.0]).collect();
    nan_points[3][0] = f64::NAN;
    let mut inf_points: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, 0.0]).collect();
    inf_points[5][1] = f64::INFINITY;
    let mut neg_inf_points: Vec<Vec<f64>> = (0..8).map(|i| vec![i as f64, 0.0]).collect();
    neg_inf_points[0][0] = f64::NEG_INFINITY;

    for pts in [&nan_points, &inf_points, &neg_inf_points] {
        let err = Session::builder()
            .points(pts)
            .noise(Noise::Probabilistic { p: 0.1, seed: 1 })
            .build()
            .unwrap_err();
        assert!(
            matches!(err, NcoError::InvalidParams { .. }),
            "degenerate coordinates must fail typed at build, got {err:?}"
        );
    }
}

#[test]
fn nan_and_inf_values_are_rejected_at_build() {
    for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
        let mut values: Vec<f64> = (1..=10).map(f64::from).collect();
        values[4] = bad;
        let err = Session::builder().values(values).build().unwrap_err();
        assert!(matches!(err, NcoError::InvalidParams { .. }));
    }
}

/// All-duplicate records are degenerate but *valid*: every comparison is
/// a tie, every distance zero. Each task must terminate with a
/// well-formed answer — never panic, never loop — under every noise
/// model.
#[test]
fn all_duplicate_points_run_every_metric_task() {
    let dup_points: Vec<Vec<f64>> = (0..12).map(|_| vec![1.0, 2.0]).collect();
    for noise in all_noises() {
        for task in metric_tasks() {
            let session = Session::builder()
                .points(&dup_points)
                .noise(noise)
                .seed(7)
                .build()
                .unwrap();
            let outcome = session
                .run(task)
                .unwrap_or_else(|e| panic!("{task:?} under {noise:?} failed: {e}"));
            match task {
                Task::KCenter { k } => {
                    let c = outcome.answer.clustering().unwrap();
                    assert_eq!(c.centers.len(), k);
                    assert_eq!(c.assignment.len(), dup_points.len());
                }
                Task::Nearest { .. } | Task::Farthest { .. } => {
                    let item = outcome.answer.item().unwrap();
                    assert!(item < dup_points.len() && item != 0);
                }
                Task::Hierarchy { .. } => {
                    let d = outcome.answer.dendrogram().unwrap();
                    assert_eq!(d.merges.len(), dup_points.len() - 1);
                }
                _ => unreachable!(),
            }
        }
    }
}

#[test]
fn all_duplicate_values_run_every_value_task() {
    for noise in all_noises() {
        for task in [
            Task::Max,
            Task::TopK { k: 3 },
            Task::Sort,
            Task::Select { k: 4 },
            Task::Partition { k: 4 },
        ] {
            let session = Session::builder()
                .values(vec![3.0; 10])
                .noise(noise)
                .seed(7)
                .build()
                .unwrap();
            let outcome = session
                .run(task)
                .unwrap_or_else(|e| panic!("{task:?} under {noise:?} failed: {e}"));
            match task {
                Task::Max | Task::Select { .. } => {
                    assert!(outcome.answer.item().unwrap() < 10)
                }
                Task::TopK { k } => assert_eq!(outcome.answer.items().unwrap().len(), k),
                Task::Sort => {
                    let mut r = outcome.answer.ranking().unwrap().to_vec();
                    r.sort_unstable();
                    assert_eq!(r, (0..10).collect::<Vec<_>>(), "a permutation");
                }
                Task::Partition { k } => {
                    let (top, rest) = outcome.answer.partition().unwrap();
                    assert_eq!(top.len(), k);
                    assert_eq!(top.len() + rest.len(), 10);
                }
                _ => unreachable!(),
            }
        }
    }
}

/// `n = 1` is the smallest legal corpus for Max/TopK{1}/KCenter{1}; the
/// relational tasks (neighbours, hierarchy) need two records and fail
/// typed below that.
#[test]
fn single_record_corpora_answer_trivially_or_fail_typed() {
    let one_value = Session::builder()
        .values(vec![5.0])
        .noise(Noise::Probabilistic { p: 0.1, seed: 1 })
        .build()
        .unwrap();
    assert_eq!(one_value.run(Task::Max).unwrap().answer.item(), Some(0));
    assert_eq!(
        one_value.run(Task::TopK { k: 1 }).unwrap().answer.items(),
        Some(&[0usize][..])
    );
    assert_eq!(
        one_value.run(Task::Sort).unwrap().answer.ranking(),
        Some(&[0usize][..])
    );
    assert_eq!(
        one_value.run(Task::Select { k: 1 }).unwrap().answer.item(),
        Some(0)
    );
    let part = one_value.run(Task::Partition { k: 1 }).unwrap();
    assert_eq!(
        part.answer.partition(),
        Some((&[0usize][..], &[][..])),
        "a single record partitions into itself"
    );

    let one_point = Session::builder()
        .points(&[vec![1.0, 2.0]])
        .noise(Noise::Probabilistic { p: 0.1, seed: 1 })
        .build()
        .unwrap();
    let c = one_point.run(Task::KCenter { k: 1 }).unwrap();
    assert_eq!(c.answer.clustering().unwrap().centers, vec![0]);
    for task in [
        Task::Nearest { q: 0 },
        Task::Farthest { q: 0 },
        Task::Hierarchy {
            linkage: Linkage::Single,
        },
    ] {
        assert!(
            matches!(one_point.run(task), Err(NcoError::EmptyInput { .. })),
            "{task:?} must fail typed on n = 1"
        );
    }
}

#[test]
fn out_of_range_parameters_fail_typed_for_every_task() {
    let values = Session::builder()
        .values((1..=6).map(f64::from).collect())
        .build()
        .unwrap();
    for k in [0, 7, usize::MAX] {
        assert!(matches!(
            values.run(Task::TopK { k }),
            Err(NcoError::InvalidParams { .. })
        ));
        assert!(matches!(
            values.run(Task::Select { k }),
            Err(NcoError::InvalidParams { .. })
        ));
        assert!(matches!(
            values.run(Task::Partition { k }),
            Err(NcoError::InvalidParams { .. })
        ));
    }

    let points: Vec<Vec<f64>> = (0..6).map(|i| vec![i as f64, 0.0]).collect();
    let metric = Session::builder().points(&points).build().unwrap();
    for k in [0, 7, usize::MAX] {
        assert!(matches!(
            metric.run(Task::KCenter { k }),
            Err(NcoError::InvalidParams { .. })
        ));
    }
    for q in [6, usize::MAX] {
        assert!(matches!(
            metric.run(Task::Nearest { q }),
            Err(NcoError::InvalidParams { .. })
        ));
        assert!(matches!(
            metric.run(Task::Farthest { q }),
            Err(NcoError::InvalidParams { .. })
        ));
    }
    // Tasks crossed with the wrong data source fail typed too.
    assert!(matches!(
        values.run(Task::KCenter { k: 2 }),
        Err(NcoError::InvalidParams { .. })
    ));
    assert!(matches!(
        metric.run(Task::Max),
        Err(NcoError::InvalidParams { .. })
    ));
}

#[test]
fn empty_inputs_fail_typed() {
    let no_values = Session::builder().values(Vec::new()).build().unwrap();
    assert!(matches!(
        no_values.run(Task::Max),
        Err(NcoError::EmptyInput { .. })
    ));
    assert!(matches!(
        no_values.run(Task::TopK { k: 1 }),
        Err(NcoError::InvalidParams { .. }) | Err(NcoError::EmptyInput { .. })
    ));
    assert!(matches!(
        no_values.run(Task::Sort),
        Err(NcoError::EmptyInput { .. })
    ));
    for task in [Task::Select { k: 1 }, Task::Partition { k: 1 }] {
        assert!(matches!(
            no_values.run(task),
            Err(NcoError::InvalidParams { .. }) | Err(NcoError::EmptyInput { .. })
        ));
    }

    let no_points = Session::builder().points(&[]).build().unwrap();
    assert!(matches!(
        no_points.run(Task::KCenter { k: 1 }),
        Err(NcoError::InvalidParams { .. }) | Err(NcoError::EmptyInput { .. })
    ));
    assert!(matches!(
        no_points.run(Task::Hierarchy {
            linkage: Linkage::Complete
        }),
        Err(NcoError::EmptyInput { .. })
    ));
}
