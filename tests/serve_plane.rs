//! The concurrent serving plane's contract:
//!
//! 1. **Served == solo.** A request through the server returns the same
//!    answer with the same per-request query/round tallies as a solo
//!    `Session::run` of the identical task — the shared backend memo and
//!    cross-request coalescing change *cost distribution*, never
//!    semantics.
//! 2. **Pooled admission never over-admits.** `SharedBudgeted` under
//!    thread contention bills at most its cap; `BudgetPool` reservations
//!    are all-or-nothing and their sum never exceeds the cap.
//! 3. **Shedding, not collapse.** Pool exhaustion fails requests typed
//!    (`BudgetExceeded`) without deadlocking the round coalescer; a full
//!    queue rejects with `Overloaded`; shutdown drains what was queued.
//! 4. **Robust lifecycle.** `shutdown` is idempotent and safe to race
//!    with concurrent `submit`s and other shutdowns; the pooled budget
//!    stays consistent even when reservers die mid-round.

use nco_core::hier::Linkage;
use noisy_oracle::{NcoError, Noise, Request, Server, Session, Task};

fn grid_points(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![(i % 9) as f64 * 1.7, (i / 9) as f64 * 2.3])
        .collect()
}

fn metric_template(n: usize) -> Session {
    Session::builder()
        .points(&grid_points(n))
        .noise(Noise::Probabilistic { p: 0.1, seed: 77 })
        .cache_distances(true)
        .build()
        .unwrap()
}

#[test]
fn served_metric_requests_match_solo_sessions() {
    let requests = [
        Request {
            task: Task::Nearest { q: 3 },
            seed: 1,
        },
        Request {
            task: Task::Farthest { q: 10 },
            seed: 2,
        },
        Request {
            task: Task::KCenter { k: 4 },
            seed: 3,
        },
        Request {
            task: Task::Hierarchy {
                linkage: Linkage::Single,
            },
            seed: 4,
        },
        // A repeat of an earlier request: its per-request bill must be
        // identical even though the backend memo answers it for free.
        Request {
            task: Task::Nearest { q: 3 },
            seed: 1,
        },
    ];

    let server = Server::builder(metric_template(45))
        .workers(3)
        .build()
        .unwrap();
    let handles: Vec<_> = requests
        .iter()
        .map(|&r| server.submit(r).unwrap())
        .collect();
    let served: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let stats = server.shutdown();

    // Fresh identical engine for the solo reference runs.
    let solo_template = metric_template(45);
    let mut request_query_sum = 0;
    for (request, outcome) in requests.iter().zip(&served) {
        let solo = Session::builder()
            .points(&grid_points(45))
            .noise(Noise::Probabilistic { p: 0.1, seed: 77 })
            .cache_distances(true)
            .seed(request.seed)
            .build()
            .unwrap()
            .run(request.task)
            .unwrap();
        assert_eq!(
            solo.answer, outcome.answer,
            "answer differs for {request:?}"
        );
        assert_eq!(
            solo.report.queries, outcome.report.queries,
            "per-request queries differ for {request:?}"
        );
        assert_eq!(
            solo.report.rounds, outcome.report.rounds,
            "per-request rounds differ for {request:?}"
        );
        request_query_sum += outcome.report.queries;
    }
    drop(solo_template);

    assert_eq!(stats.submitted, requests.len() as u64);
    assert_eq!(stats.completed, requests.len() as u64);
    assert_eq!(stats.shed, 0);
    // The repeated request (and any cross-request overlap) was answered
    // from the shared memo: the backend issued strictly fewer queries
    // than the requests billed in total.
    assert!(
        stats.backend_queries < request_query_sum,
        "backend {} vs billed {}",
        stats.backend_queries,
        request_query_sum
    );
    assert!(stats.memo_hits > 0);
    assert!(stats.backend_rounds > 0);
}

#[test]
fn served_value_requests_match_solo_sessions() {
    let values: Vec<f64> = (0..80).map(|i| ((i * 29) % 83) as f64).collect();
    let template = Session::builder()
        .values(values.clone())
        .noise(Noise::Probabilistic { p: 0.15, seed: 5 })
        .build()
        .unwrap();
    let server = Server::builder(template).workers(2).build().unwrap();
    let requests = [
        Request {
            task: Task::Max,
            seed: 11,
        },
        Request {
            task: Task::TopK { k: 5 },
            seed: 12,
        },
        Request {
            task: Task::Max,
            seed: 13,
        },
    ];
    let handles: Vec<_> = requests
        .iter()
        .map(|&r| server.submit(r).unwrap())
        .collect();
    let served: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let stats = server.shutdown();

    for (request, outcome) in requests.iter().zip(&served) {
        let solo = Session::builder()
            .values(values.clone())
            .noise(Noise::Probabilistic { p: 0.15, seed: 5 })
            .seed(request.seed)
            .build()
            .unwrap()
            .run(request.task)
            .unwrap();
        assert_eq!(
            solo.answer, outcome.answer,
            "answer differs for {request:?}"
        );
        assert_eq!(
            solo.report.queries, outcome.report.queries,
            "queries differ for {request:?}"
        );
        assert_eq!(
            solo.report.rounds, outcome.report.rounds,
            "rounds differ for {request:?}"
        );
    }
    assert_eq!(stats.completed, 3);
    assert!(stats.memo_hits > 0, "overlapping max runs share answers");
}

/// The ordering tasks ride the same value-session dispatch, so served
/// Sort/Select/Partition requests must be bit-identical to solo runs
/// without any serve-plane code knowing they exist.
#[test]
fn served_order_requests_match_solo_sessions() {
    let values: Vec<f64> = (0..96).map(|i| ((i * 29) % 97) as f64).collect();
    let template = Session::builder()
        .values(values.clone())
        .noise(Noise::Probabilistic { p: 0.15, seed: 5 })
        .build()
        .unwrap();
    let server = Server::builder(template).workers(2).build().unwrap();
    let requests = [
        Request {
            task: Task::Sort,
            seed: 21,
        },
        Request {
            task: Task::Select { k: 12 },
            seed: 22,
        },
        Request {
            task: Task::Partition { k: 12 },
            seed: 23,
        },
    ];
    let handles: Vec<_> = requests
        .iter()
        .map(|&r| server.submit(r).unwrap())
        .collect();
    let served: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    let stats = server.shutdown();

    for (request, outcome) in requests.iter().zip(&served) {
        let solo = Session::builder()
            .values(values.clone())
            .noise(Noise::Probabilistic { p: 0.15, seed: 5 })
            .seed(request.seed)
            .build()
            .unwrap()
            .run(request.task)
            .unwrap();
        assert_eq!(
            solo.answer, outcome.answer,
            "answer differs for {request:?}"
        );
        assert_eq!(
            solo.report.queries, outcome.report.queries,
            "queries differ for {request:?}"
        );
        assert_eq!(
            solo.report.rounds, outcome.report.rounds,
            "rounds differ for {request:?}"
        );
    }
    assert_eq!(stats.completed, 3);
}

#[test]
fn shared_budgeted_never_over_admits_under_contention() {
    use nco_oracle::persistent::SharedQuadrupletOracle;
    use nco_oracle::{SharedBudgeted, TrueQuadOracle};
    let metric = nco_metric::EuclideanMetric::from_points(
        &(0..16).map(|i| vec![i as f64]).collect::<Vec<_>>(),
    );
    let cap = 5_000u64;
    let oracle = SharedBudgeted::new(TrueQuadOracle::new(metric), Some(cap));
    let threads = 8;
    let per_thread = 1_000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let oracle = &oracle;
            scope.spawn(move || {
                for i in 0..per_thread {
                    let a = (t as usize + i as usize) % 16;
                    let _ = oracle.le_shared(a, (a + 1) % 16, (a + 2) % 16, (a + 3) % 16);
                }
                oracle.note_round();
            });
        }
    });
    // 8000 admissions raced for 5000 slots: billed exactly the cap, the
    // excess was refused, and every refusal tripped the flag.
    assert_eq!(oracle.queries(), cap);
    assert!(oracle.exceeded());
    assert_eq!(oracle.rounds(), threads as u64);

    // Under the cap: exact total, flag untouched.
    let roomy = SharedBudgeted::new(
        TrueQuadOracle::new(nco_metric::EuclideanMetric::from_points(
            &(0..16).map(|i| vec![i as f64]).collect::<Vec<_>>(),
        )),
        Some(1_000_000),
    );
    std::thread::scope(|scope| {
        for t in 0..threads {
            let roomy = &roomy;
            scope.spawn(move || {
                for i in 0..per_thread {
                    let a = (t as usize + i as usize) % 16;
                    let _ = roomy.le_shared(a, (a + 1) % 16, (a + 2) % 16, (a + 3) % 16);
                }
            });
        }
    });
    assert_eq!(roomy.queries(), threads as u64 * per_thread);
    assert!(!roomy.exceeded());
}

#[test]
fn budget_pool_concurrent_reservations_never_exceed_cap() {
    use nco_oracle::BudgetPool;
    use std::sync::atomic::{AtomicU64, Ordering};
    let cap = 10_000u64;
    let pool = BudgetPool::new(Some(cap));
    let granted = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let pool = &pool;
            let granted = &granted;
            scope.spawn(move || {
                for i in 0..2_000u64 {
                    let k = 1 + (t + i) % 7;
                    if pool.try_reserve(k) {
                        granted.fetch_add(k, Ordering::Relaxed);
                    }
                }
            });
        }
    });
    let granted = granted.load(std::sync::atomic::Ordering::Relaxed);
    assert!(granted <= cap, "granted {granted} > cap {cap}");
    assert_eq!(pool.spent(), granted, "spent must equal the granted sum");
    assert!(pool.refused(), "8 x 2000 reservations must exhaust 10k");
    // All-or-nothing: what remains is simply cap - granted, and a
    // reservation of exactly that size still succeeds.
    let left = pool.remaining();
    assert_eq!(left, cap - granted);
    if left > 0 {
        assert!(pool.try_reserve(left));
    }
    assert!(!pool.try_reserve(1));
}

#[test]
fn pool_exhaustion_sheds_requests_without_deadlock() {
    // A pool far too small for four hierarchy runs: some requests must
    // fail with the *pool's* BudgetExceeded while the rest complete —
    // and the coalescer must keep serving the survivors (a starved
    // request stops submitting rounds instead of blocking one).
    let template = metric_template(36);
    let server = Server::builder(template)
        .workers(4)
        .pool_budget(4_000)
        .build()
        .unwrap();
    let handles: Vec<_> = (0..4)
        .map(|seed| {
            server
                .submit(Request {
                    task: Task::Hierarchy {
                        linkage: Linkage::Single,
                    },
                    seed,
                })
                .unwrap()
        })
        .collect();
    let results: Vec<_> = handles.into_iter().map(|h| h.join()).collect();
    let stats = server.shutdown();

    let ok = results.iter().filter(|r| r.is_ok()).count();
    let shed = results
        .iter()
        .filter(|r| matches!(r, Err(NcoError::BudgetExceeded { budget: 4_000, .. })))
        .count();
    assert_eq!(ok + shed, 4, "unexpected error kind in {results:?}");
    assert!(shed >= 1, "a 4k pool cannot cover four hierarchy runs");
    assert!(stats.pool_spent <= 4_000, "pool over-admitted");
    assert_eq!(stats.completed, 4, "every request finished (ok or typed)");
}

#[test]
fn full_queue_rejects_with_overloaded() {
    // One worker, pinned down by a slow hierarchy run; a queue of 2 then
    // fills after two quick submissions and must shed the rest typed.
    let server = Server::builder(metric_template(64))
        .workers(1)
        .queue(2)
        .build()
        .unwrap();
    let blocker = server
        .submit(Request {
            task: Task::Hierarchy {
                linkage: Linkage::Single,
            },
            seed: 0,
        })
        .unwrap();
    let mut accepted = vec![blocker];
    let mut rejected = 0;
    for seed in 1..=12u64 {
        match server.submit(Request {
            task: Task::Nearest { q: 1 },
            seed,
        }) {
            Ok(h) => accepted.push(h),
            Err(NcoError::Overloaded { .. }) => rejected += 1,
            Err(other) => panic!("expected Overloaded, got {other}"),
        }
    }
    assert!(
        rejected >= 1,
        "12 rapid submissions must overflow a 2-queue"
    );
    for h in accepted {
        h.join().unwrap();
    }
    let stats = server.shutdown();
    assert_eq!(stats.shed, rejected);
    assert_eq!(stats.completed, stats.submitted);
}

#[test]
fn shutdown_drains_queued_requests() {
    let server = Server::builder(metric_template(30))
        .workers(1)
        .queue(16)
        .build()
        .unwrap();
    let handles: Vec<_> = (0..6)
        .map(|seed| {
            server
                .submit(Request {
                    task: Task::KCenter { k: 3 },
                    seed,
                })
                .unwrap()
        })
        .collect();
    // Shutdown closes the door but finishes what was already accepted.
    let stats = server.shutdown();
    assert_eq!(stats.completed, 6);
    for h in handles {
        assert!(h.join().is_ok());
    }
}

#[test]
fn per_request_budget_still_fails_typed() {
    let template = Session::builder()
        .points(&grid_points(32))
        .noise(Noise::Probabilistic { p: 0.1, seed: 3 })
        .budget(10)
        .build()
        .unwrap();
    let server = Server::builder(template).workers(1).build().unwrap();
    let h = server
        .submit(Request {
            task: Task::KCenter { k: 4 },
            seed: 0,
        })
        .unwrap();
    match h.join() {
        Err(NcoError::BudgetExceeded { budget, .. }) => assert_eq!(budget, 10),
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }
}

#[test]
fn server_builder_rejects_unsupported_templates() {
    let memo = Session::builder()
        .points(&grid_points(8))
        .memoize(true)
        .build()
        .unwrap();
    assert!(matches!(
        Server::builder(memo).build(),
        Err(NcoError::InvalidParams { .. })
    ));
    let zero_workers = Server::builder(metric_template(8)).workers(0).build();
    assert!(matches!(zero_workers, Err(NcoError::InvalidParams { .. })));
    let zero_queue = Server::builder(metric_template(8)).queue(0).build();
    assert!(matches!(zero_queue, Err(NcoError::InvalidParams { .. })));
}

#[test]
fn shutdown_is_idempotent_and_race_free_with_submit() {
    let server = Server::builder(metric_template(30))
        .workers(2)
        .build()
        .unwrap();
    // Work accepted before any shutdown must complete.
    let pre: Vec<_> = (0..4)
        .map(|seed| {
            server
                .submit(Request {
                    task: Task::KCenter { k: 3 },
                    seed,
                })
                .unwrap()
        })
        .collect();
    // Two concurrent shutdowns race a stream of submissions: every
    // submission either completes normally or sheds typed — none hangs,
    // none panics, and both shutdown calls return settled counters.
    let (stats_a, stats_b) = std::thread::scope(|scope| {
        let a = scope.spawn(|| server.shutdown());
        let b = scope.spawn(|| server.shutdown());
        let submitter = scope.spawn(|| {
            for seed in 0..16u64 {
                match server.submit(Request {
                    task: Task::Nearest { q: 1 },
                    seed,
                }) {
                    // Accepted before the door closed: must finish.
                    Ok(h) => assert!(h.join().is_ok()),
                    Err(NcoError::Overloaded { .. }) => {}
                    Err(other) => panic!("expected Overloaded, got {other:?}"),
                }
            }
        });
        submitter.join().unwrap();
        (a.join().unwrap(), b.join().unwrap())
    });
    for h in pre {
        assert!(h.join().is_ok(), "pre-shutdown work was lost");
    }
    // Both calls returned after the pool fully drained, so both report
    // every accepted request as completed.
    assert_eq!(stats_a.completed, stats_a.submitted);
    assert_eq!(stats_b.completed, stats_b.submitted);
    // A third call after the fact is a cheap no-op returning the same
    // settled counters, and submission stays refused.
    let stats_c = server.shutdown();
    assert_eq!(stats_c.completed, stats_c.submitted);
    assert!(matches!(
        server.submit(Request {
            task: Task::Nearest { q: 1 },
            seed: 0,
        }),
        Err(NcoError::Overloaded { .. })
    ));
}

#[test]
fn budget_pool_stays_consistent_when_reservers_die_mid_round() {
    use nco_oracle::BudgetPool;
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::sync::atomic::{AtomicU64, Ordering};

    // Keep the simulated crashes out of the test log; report real ones.
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let simulated = info
            .payload()
            .downcast_ref::<&str>()
            .is_some_and(|s| s.contains("simulated mid-round crash"));
        if !simulated {
            prev(info);
        }
    }));

    let cap = 8_000u64;
    let pool = BudgetPool::new(Some(cap));
    let granted = AtomicU64::new(0);
    std::thread::scope(|scope| {
        for t in 0..8u64 {
            let pool = &pool;
            let granted = &granted;
            scope.spawn(move || {
                let _ = catch_unwind(AssertUnwindSafe(|| {
                    for i in 0..2_000u64 {
                        let k = 1 + (t + i) % 5;
                        if pool.try_reserve(k) {
                            granted.fetch_add(k, Ordering::Relaxed);
                            // Half the reservers die mid-round, *after*
                            // reserving — the quota they took must stay
                            // spent (conservative), never corrupt.
                            if t % 2 == 0 && i == 500 {
                                panic!("simulated mid-round crash");
                            }
                        }
                    }
                }));
            });
        }
    });
    let granted = granted.load(Ordering::Relaxed);
    assert!(granted <= cap, "granted {granted} > cap {cap}");
    assert_eq!(
        pool.spent(),
        granted,
        "crashed reservers must not desync the spent tally"
    );
    // The pool is still fully functional after the crashes: what
    // remains is exactly cap - granted, reservable to the last query.
    let left = pool.remaining();
    assert_eq!(left, cap - granted);
    if left > 0 {
        assert!(pool.try_reserve(left));
    }
    assert!(!pool.try_reserve(1));
    assert_eq!(pool.spent(), cap);
}

#[test]
fn cache_added_reports_per_run_delta() {
    let engine = noisy_oracle::Engine::from_metric(
        nco_data::AnyMetric::Euclidean(nco_metric::EuclideanMetric::from_points(&grid_points(40))),
        true,
    );
    let session = |seed: u64| {
        Session::builder()
            .engine(engine.clone())
            .noise(Noise::Probabilistic { p: 0.1, seed: 21 })
            .seed(seed)
            .build()
            .unwrap()
    };
    let first = session(1).run(Task::Farthest { q: 0 }).unwrap();
    // The first run on a cold cache contributed every entry.
    assert_eq!(first.report.cache_added, first.report.cache_entries);
    assert!(first.report.cache_added.unwrap() > 0);

    let before = engine.cache_entries().unwrap();
    let second = session(2).run(Task::Nearest { q: 5 }).unwrap();
    // The second run's delta excludes the first run's entries.
    assert_eq!(
        second.report.cache_added,
        Some(second.report.cache_entries.unwrap() - before)
    );
    assert!(second.report.cache_added.unwrap() < second.report.cache_entries.unwrap());
}
