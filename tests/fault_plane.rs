//! Chaos suite for the fault plane.
//!
//! The central guarantee under test: **a fault plan fully masked by the
//! retry policy is answer-invariant**. Noise persistence means a
//! re-asked query re-reads the same noisy belief, so retries return the
//! exact bits the fault swallowed — the faulty run must produce answers
//! bit-identical to the fault-free run, across every task and noise
//! model, with only the bill (queries spent) allowed to grow. The suite
//! pins this over tasks × noise models × 20 plan seeds, then exercises
//! the failure edges: unmasked faults failing typed, deadlines and
//! cancellation killing runs with partial accounting, and the serving
//! plane masking fault storms and containing worker panics.

use std::time::Duration;

use nco_core::hier::Linkage;
use noisy_oracle::oracle::crowd::AccuracyProfile;
use noisy_oracle::{FaultPlan, NcoError, Noise, Request, RetryPolicy, Server, Session, Task};

fn grid_points(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![(i % 7) as f64 * 1.9, (i / 7) as f64 * 2.1])
        .collect()
}

/// A storm the 12-attempt policy always absorbs: ~8% transient drops,
/// ~5% stalls, a 3-attempt outage burst every 512 attempts, and one
/// dead worker in a pool of 16 (~6% stuck answers). Worst-case per-ask
/// fault probability is ~0.2, so twelve attempts leave no realistic
/// chance of exhaustion — and the suite asserts none occurs.
fn masked_plan(seed: u64) -> FaultPlan {
    FaultPlan::new(seed)
        .transient(0.08)
        .stalls(0.05, 500)
        .outages(512, 3)
        .dead_workers(16, 1)
}

fn noise_models() -> Vec<Noise> {
    vec![
        Noise::Exact,
        Noise::Adversarial { mu: 0.3 },
        Noise::Probabilistic { p: 0.15, seed: 11 },
        Noise::Crowd {
            profile: AccuracyProfile::amazon_like(),
            workers: 3,
            seed: 11,
        },
    ]
}

// ---------------------------------------------------------------------
// The tentpole: masked-fault bit-identity, tasks × noise × 20 seeds.
// ---------------------------------------------------------------------

#[test]
fn masked_faults_are_answer_identical_across_tasks_noise_and_seeds() {
    let points = grid_points(24);
    let tasks = [
        Task::KCenter { k: 3 },
        Task::Hierarchy {
            linkage: Linkage::Single,
        },
    ];
    let mut faults_survived = 0u64;
    for task in tasks {
        for (ni, noise) in noise_models().into_iter().enumerate() {
            for seed in 0..20u64 {
                let build = |plan: Option<FaultPlan>| {
                    let mut b = Session::builder().points(&points).noise(noise).seed(seed);
                    if let Some(plan) = plan {
                        b = b.fault_plan(plan).retry_policy(RetryPolicy::new(12));
                    }
                    b.build().unwrap()
                };
                let clean = build(None).run(task).unwrap();
                let plan = masked_plan(seed * 101 + ni as u64);
                let faulty = build(Some(plan)).run(task).unwrap_or_else(|e| {
                    panic!("fault outlived the policy for {task:?} / {noise:?} / seed {seed}: {e}")
                });
                assert_eq!(
                    clean.answer, faulty.answer,
                    "masked faults changed the answer: {task:?} / {noise:?} / seed {seed}"
                );
                assert!(
                    faulty.report.queries >= clean.report.queries,
                    "retries must only add to the bill: {task:?} / {noise:?} / seed {seed}"
                );
                faults_survived += faulty.report.queries - clean.report.queries;
            }
        }
    }
    // If the plans never injected anything, the suite proved nothing.
    assert!(
        faults_survived > 0,
        "no retries billed across the whole sweep — faults were never injected"
    );
}

#[test]
fn faulty_runs_are_deterministic() {
    let points = grid_points(24);
    let run = || {
        Session::builder()
            .points(&points)
            .noise(Noise::Probabilistic { p: 0.2, seed: 3 })
            .seed(8)
            .fault_plan(masked_plan(99))
            .retry_policy(RetryPolicy::new(12))
            .build()
            .unwrap()
            .run(Task::KCenter { k: 4 })
            .unwrap()
    };
    let a = run();
    let b = run();
    assert_eq!(a.answer, b.answer);
    assert_eq!(a.report.queries, b.report.queries);
    assert_eq!(a.report.rounds, b.report.rounds);
}

#[test]
fn unmasked_outage_fails_typed_and_preserves_the_bill() {
    // A 6-attempt outage burst cannot be outlived by a 3-attempt policy.
    let s = Session::builder()
        .points(&grid_points(24))
        .fault_plan(FaultPlan::new(5).outages(8, 6))
        .retry_policy(RetryPolicy::new(3))
        .build()
        .unwrap();
    match s.run(Task::Hierarchy {
        linkage: Linkage::Single,
    }) {
        Err(NcoError::OracleFailed {
            queries_spent,
            attempts,
        }) => {
            assert!(queries_spent > 0, "the failed attempts were still billed");
            assert_eq!(attempts, 3);
        }
        other => panic!("expected OracleFailed, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// Deadlines and cancellation.
// ---------------------------------------------------------------------

#[test]
fn deadlines_kill_or_are_invisible() {
    let points = grid_points(24);
    let task = Task::KCenter { k: 3 };
    let base = || {
        Session::builder()
            .points(&points)
            .noise(Noise::Probabilistic { p: 0.1, seed: 2 })
            .seed(4)
    };
    let clean = base().build().unwrap().run(task).unwrap();
    // A generous deadline changes nothing, bit for bit.
    let timed = base()
        .deadline(Duration::from_secs(3600))
        .build()
        .unwrap()
        .run(task)
        .unwrap();
    assert_eq!(clean.answer, timed.answer);
    assert_eq!(clean.report.queries, timed.report.queries);
    // An expired one kills at the first boundary, accounting preserved.
    match base().deadline(Duration::ZERO).build().unwrap().run(task) {
        Err(NcoError::DeadlineExceeded { report, .. }) => {
            assert_eq!(report.queries, 0);
            assert_eq!(report.rounds, 0);
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
}

#[test]
fn cancellation_composes_with_fault_masking() {
    // A cancelled run under an (otherwise masked) fault plan still dies
    // by the token — and the kill wins over further retry spending.
    let token = noisy_oracle::CancelToken::new();
    let s = Session::builder()
        .points(&grid_points(24))
        .fault_plan(masked_plan(7))
        .retry_policy(RetryPolicy::new(12))
        .cancel_token(token.clone())
        .build()
        .unwrap();
    token.cancel();
    match s.run(Task::KCenter { k: 3 }) {
        Err(NcoError::DeadlineExceeded { report, .. }) => assert_eq!(report.queries, 0),
        other => panic!("expected a cancel kill, got {other:?}"),
    }
}

// ---------------------------------------------------------------------
// The serving plane under a fault storm.
// ---------------------------------------------------------------------

#[test]
fn served_fault_storm_is_masked_with_identical_answers() {
    let points = grid_points(32);
    let noise = Noise::Probabilistic { p: 0.1, seed: 6 };
    // Solo reference answers, no faults anywhere.
    let solo: Vec<_> = (0..6u64)
        .map(|seed| {
            Session::builder()
                .points(&points)
                .noise(noise)
                .seed(seed)
                .build()
                .unwrap()
                .run(Task::KCenter { k: 3 })
                .unwrap()
                .answer
        })
        .collect();
    // The same requests through a server whose shared backend rides a
    // fault storm behind a retry layer.
    let template = Session::builder()
        .points(&points)
        .noise(noise)
        .fault_plan(masked_plan(13))
        .retry_policy(RetryPolicy::new(12))
        .build()
        .unwrap();
    let server = Server::builder(template).workers(3).build().unwrap();
    let handles: Vec<_> = (0..6u64)
        .map(|seed| {
            server
                .submit(Request {
                    task: Task::KCenter { k: 3 },
                    seed,
                })
                .unwrap()
        })
        .collect();
    for (seed, h) in handles.into_iter().enumerate() {
        let outcome = h
            .join()
            .unwrap_or_else(|e| panic!("served request {seed} was not masked: {e}"));
        assert_eq!(
            outcome.answer, solo[seed],
            "served answer diverged under masked faults (seed {seed})"
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 6);
    assert!(stats.retries > 0, "the storm never forced a retry");
    assert!(stats.faults_masked > 0);
    assert_eq!(stats.panics, 0);
    assert_eq!(stats.deadline_kills, 0);
}

#[test]
fn served_unmasked_fault_fails_requests_typed() {
    let template = Session::builder()
        .points(&grid_points(24))
        .fault_plan(FaultPlan::new(21).outages(8, 6))
        .retry_policy(RetryPolicy::new(2))
        .build()
        .unwrap();
    // One worker: requests run serially, so the backend's failure latch
    // is set by the first request and seen by every one of them.
    let server = Server::builder(template).workers(1).build().unwrap();
    let handles: Vec<_> = (0..3u64)
        .map(|seed| {
            server
                .submit(Request {
                    task: Task::KCenter { k: 3 },
                    seed,
                })
                .unwrap()
        })
        .collect();
    for h in handles {
        match h.join() {
            Err(NcoError::OracleFailed { attempts, .. }) => assert_eq!(attempts, 2),
            other => panic!("expected OracleFailed, got {other:?}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 3);
}

#[test]
fn served_deadline_kills_are_counted_and_typed() {
    let template = Session::builder()
        .points(&grid_points(24))
        .noise(Noise::Probabilistic { p: 0.1, seed: 1 })
        .deadline(Duration::ZERO)
        .build()
        .unwrap();
    let server = Server::builder(template).workers(2).build().unwrap();
    let handles: Vec<_> = (0..4u64)
        .map(|seed| {
            server
                .submit(Request {
                    task: Task::Farthest { q: seed as usize },
                    seed,
                })
                .unwrap()
        })
        .collect();
    for h in handles {
        match h.join() {
            Err(NcoError::DeadlineExceeded { report, .. }) => assert_eq!(report.queries, 0),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.deadline_kills, 4);
    assert_eq!(stats.completed, 4);
}

// ---------------------------------------------------------------------
// Worker panic isolation.
// ---------------------------------------------------------------------

/// Suppresses the expected "injected fault-plan panic" stderr noise so
/// CI logs stay deterministic; every other panic is reported normally.
fn quiet_injected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let injected = info
            .payload()
            .downcast_ref::<&str>()
            .map(|s| s.contains("injected fault-plan panic"))
            .or_else(|| {
                info.payload()
                    .downcast_ref::<String>()
                    .map(|s| s.contains("injected fault-plan panic"))
            })
            .unwrap_or(false);
        if !injected {
            prev(info);
        }
    }));
}

#[test]
fn worker_panic_is_contained_and_the_pool_survives() {
    quiet_injected_panics();
    let points = grid_points(24);
    // Deterministic solo references (no faults).
    let solo: Vec<_> = (0..4u64)
        .map(|seed| {
            Session::builder()
                .points(&points)
                .seed(seed)
                .build()
                .unwrap()
                .run(Task::KCenter { k: 3 })
                .unwrap()
                .answer
        })
        .collect();
    // The plan's only fault is a single panic at backend attempt 50 —
    // deep enough that the doomed request is mid-run when it fires.
    let template = Session::builder()
        .points(&points)
        .fault_plan(FaultPlan::new(0).panic_at(50))
        .build()
        .unwrap();
    let server = Server::builder(template).workers(2).build().unwrap();
    let handles: Vec<_> = (0..4u64)
        .map(|seed| {
            server
                .submit(Request {
                    task: Task::KCenter { k: 3 },
                    seed,
                })
                .unwrap()
        })
        .collect();
    let mut panicked = 0;
    for (seed, h) in handles.into_iter().enumerate() {
        match h.join() {
            Ok(outcome) => assert_eq!(
                outcome.answer, solo[seed],
                "a surviving request lost its answer to someone else's panic (seed {seed})"
            ),
            Err(NcoError::Panicked { reason }) => {
                assert!(reason.contains("injected fault-plan panic"));
                panicked += 1;
            }
            Err(other) => panic!("unexpected failure mode: {other:?}"),
        }
    }
    assert_eq!(
        panicked, 1,
        "exactly the request whose ask hit the panic must die"
    );
    // The pool survived: the worker rejoined and serves new requests.
    let late = server
        .submit(Request {
            task: Task::KCenter { k: 3 },
            seed: 1,
        })
        .unwrap()
        .join()
        .unwrap();
    assert_eq!(late.answer, solo[1]);
    let stats = server.shutdown();
    assert_eq!(stats.panics, 1);
    assert_eq!(stats.completed, 5);
}
