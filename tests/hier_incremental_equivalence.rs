//! The incremental merge plane's contract (PR 5): maintaining the
//! closest-pair winner structure across merges is **decision-identical**
//! to re-running the full sweep from scratch at every merge, because all
//! shipped noise models are persistent (answers are pure functions of the
//! canonical query). Pinned here as bit-equal merge sequences across both
//! linkages, four noise models and 20 seeds — plus re-assertions of the
//! Theorem 5.2 guarantees on the incremental plane's output.

use nco_testkit::{success_rate, Counting, MetricScenario};
use noisy_oracle::core::hier::{
    hier_oracle, hier_oracle_par, hier_oracle_par_scratch, hier_oracle_scratch, hier_oracle_stats,
    Dendrogram, HierParams, Linkage,
};
use noisy_oracle::eval::pair_f_score;
use noisy_oracle::metric::Metric;
use noisy_oracle::oracle::crowd::AccuracyProfile;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

fn scenario() -> MetricScenario {
    MetricScenario::separated_blobs(4, 6, 35.0, 0x1AC5)
}

/// Incremental vs from-scratch merge sequences: both linkages, every
/// noise model, 20 seeds each — the dendrograms must be identical, and
/// the incremental plane must issue strictly fewer queries.
#[test]
fn incremental_matches_from_scratch_for_every_noise_model() {
    fn check(
        label: &str,
        linkage: Linkage,
        seed: u64,
        incremental: Dendrogram,
        scratch: Dendrogram,
    ) {
        assert_eq!(incremental, scratch, "{label}, {linkage:?}, seed {seed}");
    }

    let s = scenario();
    for linkage in [Linkage::Single, Linkage::Complete] {
        let params = HierParams::experimental(linkage);
        for seed in 0..20u64 {
            let mut a = s.exact_oracle();
            let mut b = s.exact_oracle();
            check(
                "exact",
                linkage,
                seed,
                hier_oracle(&params, &mut a, &mut rng(seed)),
                hier_oracle_scratch(&params, &mut b, &mut rng(seed)),
            );
            let mut a = s.adversarial_oracle(0.4);
            let mut b = s.adversarial_oracle(0.4);
            check(
                "adversarial",
                linkage,
                seed,
                hier_oracle(&params, &mut a, &mut rng(seed)),
                hier_oracle_scratch(&params, &mut b, &mut rng(seed)),
            );
            let mut a = s.probabilistic_oracle(0.15, 900 + seed);
            let mut b = s.probabilistic_oracle(0.15, 900 + seed);
            check(
                "probabilistic",
                linkage,
                seed,
                hier_oracle(&params, &mut a, &mut rng(seed)),
                hier_oracle_scratch(&params, &mut b, &mut rng(seed)),
            );
            let mut a = s.crowd_oracle(AccuracyProfile::caltech_like(), 300 + seed);
            let mut b = s.crowd_oracle(AccuracyProfile::caltech_like(), 300 + seed);
            check(
                "crowd",
                linkage,
                seed,
                hier_oracle(&params, &mut a, &mut rng(seed)),
                hier_oracle_scratch(&params, &mut b, &mut rng(seed)),
            );
        }
    }
}

/// The counter-stream entry point honours the same contract.
#[test]
fn counter_stream_incremental_matches_from_scratch() {
    let s = scenario();
    for linkage in [Linkage::Single, Linkage::Complete] {
        let params = HierParams::experimental(linkage);
        for seed in 0..10u64 {
            let mut inc = s.probabilistic_oracle(0.1, 40 + seed);
            let a = hier_oracle_par(&params, &mut inc, &mut rng(seed), 1);
            let mut scr = s.probabilistic_oracle(0.1, 40 + seed);
            let b = hier_oracle_par_scratch(&params, &mut scr, &mut rng(seed), 1);
            assert_eq!(a, b, "{linkage:?}, seed {seed}");
        }
    }
}

/// The query savings are real and the stats tell the story: the
/// incremental plane does fewer full sweeps than merges and issues fewer
/// oracle queries than the from-scratch reference.
#[test]
fn incremental_plane_is_cheaper_than_scratch() {
    let s = MetricScenario::separated_blobs(4, 16, 40.0, 0x1AC6);
    let params = HierParams::experimental(Linkage::Single);
    let mut inc = Counting::new(s.probabilistic_oracle(0.1, 7));
    let (da, stats) = hier_oracle_stats(&params, &mut inc, &mut rng(5));
    let mut scr = Counting::new(s.probabilistic_oracle(0.1, 7));
    let db = hier_oracle_scratch(&params, &mut scr, &mut rng(5));
    assert_eq!(da, db);
    assert!(
        inc.queries() < scr.queries(),
        "incremental {} vs scratch {}",
        inc.queries(),
        scr.queries()
    );
    assert_eq!(stats.merges, 63);
    assert!(
        stats.full_sweeps < stats.merges / 2,
        "most sweeps should reuse the incumbent structure: {stats:?}"
    );
    assert!(stats.bucket_replays > 0 && stats.pool_duels > 0);
}

/// Theorem 5.2 re-pinned on the incremental plane (adversarial noise):
/// every merge is within `(1 + mu)^3` of the best available merge in at
/// least 80% of (merge, seed) replays, checked on true distances.
#[test]
fn theorem_5_2_per_merge_bound_holds_on_the_incremental_plane() {
    let s = MetricScenario::separated_blobs(3, 7, 25.0, 0x1AC7);
    let mu = 0.3;
    let mut total = 0usize;
    let mut within = 0usize;
    for seed in 0..8u64 {
        let mut o = s.adversarial_oracle(mu);
        let d = hier_oracle(
            &HierParams::with_confidence(Linkage::Single, s.n(), 0.1),
            &mut o,
            &mut rng(600 + seed),
        );
        let mut members: Vec<Vec<usize>> = (0..s.n()).map(|i| vec![i]).collect();
        for mg in &d.merges {
            let merged = linkage_dist(&s, &members[mg.a], &members[mg.b]);
            let best = best_available(&s, &members, mg.merged);
            total += 1;
            if merged <= best * (1.0 + mu).powi(3) + 1e-9 {
                within += 1;
            }
            let mut union = members[mg.a].clone();
            union.extend_from_slice(&members[mg.b]);
            members.push(union);
        }
    }
    assert!(
        within * 10 >= total * 8,
        "only {within}/{total} merges within (1+mu)^3"
    );
}

/// Theorem 5.2 re-pinned as planted-partition recovery across the
/// statistical noise models. A single persistent lie can chain two blobs
/// through one bad merge, so the probabilistic per-run F-score is bimodal
/// (perfect, or ~0.75 with one fused pair); as in
/// `tests/guarantees_metric.rs`, the pinned guarantee is the
/// distribution: median perfect, floor no worse than fused pairs.
#[test]
fn incremental_plane_recovers_planted_partition_under_noise() {
    let s = MetricScenario::separated_blobs(4, 20, 70.0, 0x1AC8);
    let mut scores: Vec<f64> = (0..12u64)
        .map(|seed| {
            let mut o = s.probabilistic_oracle(0.1, 5000 + seed);
            let d = hier_oracle(
                &HierParams::experimental(Linkage::Single),
                &mut o,
                &mut rng(40 + seed),
            );
            pair_f_score(&d.cut(4), &s.labels).f1
        })
        .collect();
    scores.sort_by(f64::total_cmp);
    assert!(
        scores[scores.len() / 2] >= 0.95,
        "probabilistic median F-score too low: {scores:?}"
    );
    assert!(
        scores[0] >= 0.6,
        "probabilistic floor below the fused-pairs envelope: {scores:?}"
    );

    // The crowd's accuracy cliff makes well-separated blobs essentially
    // noiseless: recovery must be near-certain.
    let crowd = success_rate(8, 80, |seed| {
        let mut o = s.crowd_oracle(AccuracyProfile::monuments_like(), 6000 + seed);
        let d = hier_oracle(
            &HierParams::experimental(Linkage::Single),
            &mut o,
            &mut rng(seed),
        );
        pair_f_score(&d.cut(4), &s.labels).f1 >= 0.9
    });
    assert!(crowd >= 0.85, "crowd recovery rate {crowd}");
}

/// Exact oracle, single linkage: the incremental plane reproduces the
/// classical SLINK property that merge distances are non-decreasing.
#[test]
fn exact_single_linkage_merges_in_nondecreasing_distance_order() {
    let s = MetricScenario::separated_blobs(4, 10, 30.0, 0x1AC9);
    for seed in 0..5u64 {
        let mut o = s.exact_oracle();
        let d = hier_oracle(
            &HierParams::experimental(Linkage::Single),
            &mut o,
            &mut rng(seed),
        );
        let mut members: Vec<Vec<usize>> = (0..s.n()).map(|i| vec![i]).collect();
        let mut last = 0.0f64;
        for mg in &d.merges {
            let merged = linkage_dist(&s, &members[mg.a], &members[mg.b]);
            assert!(
                merged + 1e-9 >= last,
                "seed {seed}: merge at {merged} after one at {last}"
            );
            last = merged;
            let mut union = members[mg.a].clone();
            union.extend_from_slice(&members[mg.b]);
            members.push(union);
        }
    }
}

fn linkage_dist(s: &MetricScenario, a: &[usize], b: &[usize]) -> f64 {
    let mut best = f64::INFINITY;
    for &x in a {
        for &y in b {
            best = best.min(s.metric.dist(x, y));
        }
    }
    best
}

fn best_available(s: &MetricScenario, members: &[Vec<usize>], next_id: usize) -> f64 {
    let bound = members.len().min(next_id);
    let mut live: Vec<usize> = Vec::new();
    for a in 0..bound {
        let covered = (0..bound).any(|b| {
            b != a
                && members[b].len() > members[a].len()
                && members[a].iter().all(|x| members[b].contains(x))
        });
        if !covered {
            live.push(a);
        }
    }
    let mut best = f64::INFINITY;
    for i in 0..live.len() {
        for j in (i + 1)..live.len() {
            best = best.min(linkage_dist(s, &members[live[i]], &members[live[j]]));
        }
    }
    best
}
