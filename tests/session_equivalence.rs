//! Facade-vs-direct bit-equivalence: for every `Task` variant under every
//! noise model, `Session::run` must return the same answer *and* the same
//! oracle-query count as hand-wiring the oracle, comparator, parameters
//! and rng around the low-level APIs — across 20 seeds. This is the
//! contract that makes the front door safe to adopt: it can never change
//! a result, only package it.
//!
//! Also pinned here: deterministic budget enforcement exactly at the
//! configured cap, and `RunReport.queries == Counting`'s tally.

use noisy_oracle::core::comparator::ValueCmp;
use noisy_oracle::core::hier::{hier_oracle, hier_oracle_par, Dendrogram, HierParams, Linkage};
use noisy_oracle::core::kcenter::{
    kcenter_adv, kcenter_prob, Clustering, KCenterAdvParams, KCenterProbParams,
};
use noisy_oracle::core::maxfind::{
    max_adv, max_prob, top_k_adv, top_k_prob, AdvParams, ProbParams,
};
use noisy_oracle::core::neighbor::{farthest_adv, farthest_prob, nearest_adv, nearest_prob};
use noisy_oracle::core::order::{
    partition_adv, partition_prob, select_adv, select_prob, sort_adv, sort_prob, OrderAdvParams,
    OrderProbParams, Split,
};
use noisy_oracle::metric::EuclideanMetric;
use noisy_oracle::oracle::adversarial::{
    AdversarialQuadOracle, AdversarialValueOracle, InvertAdversary,
};
use noisy_oracle::oracle::crowd::{AccuracyProfile, CrowdQuadOracle, CrowdValueOracle};
use noisy_oracle::oracle::probabilistic::{ProbQuadOracle, ProbValueOracle};
use noisy_oracle::oracle::{
    ComparisonOracle, Counting, QuadrupletOracle, SharedCounting, TrueQuadOracle, TrueValueOracle,
};
use noisy_oracle::{NcoError, Noise, Session, Task};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEEDS: u64 = 20;
const MU: f64 = 0.4;
const P: f64 = 0.15;
const WORKERS: u32 = 3;

fn noise_models(seed: u64) -> Vec<Noise> {
    vec![
        Noise::Exact,
        Noise::Adversarial { mu: MU },
        Noise::Probabilistic { p: P, seed },
        Noise::Crowd {
            profile: AccuracyProfile::caltech_like(),
            workers: WORKERS,
            seed,
        },
    ]
}

fn values(n: usize) -> Vec<f64> {
    (0..n).map(|i| 1.0 + ((i * 53) % 97) as f64).collect()
}

fn points(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![(i % 9) as f64, ((i * 7) % 13) as f64 * 0.8])
        .collect()
}

fn direct_value_answer(
    task: Task,
    noise: Noise,
    vals: &[f64],
    rng_seed: u64,
) -> (Option<usize>, Vec<usize>, u64) {
    fn drive<O: ComparisonOracle>(
        task: Task,
        statistical: bool,
        mut oracle: Counting<O>,
        rng_seed: u64,
    ) -> (Option<usize>, Vec<usize>, u64) {
        let items: Vec<usize> = (0..oracle.n()).collect();
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let mut cmp = ValueCmp::new(&mut oracle);
        let (item, list) = match task {
            Task::Max => {
                let best = if statistical {
                    max_prob(&items, &ProbParams::default(), &mut cmp, &mut rng)
                } else {
                    max_adv(&items, &AdvParams::default(), &mut cmp, &mut rng)
                };
                (best, Vec::new())
            }
            Task::TopK { k } => {
                let top = if statistical {
                    top_k_prob(&items, k, &ProbParams::default(), &mut cmp, &mut rng)
                } else {
                    top_k_adv(&items, k, &AdvParams::default(), &mut cmp, &mut rng)
                };
                (None, top)
            }
            _ => unreachable!("value tasks only"),
        };
        (item, list, oracle.queries())
    }
    let statistical = matches!(noise, Noise::Probabilistic { .. } | Noise::Crowd { .. });
    match noise {
        Noise::Exact => drive(
            task,
            statistical,
            Counting::new(TrueValueOracle::new(vals.to_vec())),
            rng_seed,
        ),
        Noise::Adversarial { mu } => drive(
            task,
            statistical,
            Counting::new(AdversarialValueOracle::new(
                vals.to_vec(),
                mu,
                InvertAdversary,
            )),
            rng_seed,
        ),
        Noise::Probabilistic { p, seed } => drive(
            task,
            statistical,
            Counting::new(ProbValueOracle::new(vals.to_vec(), p, seed)),
            rng_seed,
        ),
        Noise::Crowd {
            profile,
            workers,
            seed,
        } => drive(
            task,
            statistical,
            Counting::new(CrowdValueOracle::new(vals.to_vec(), profile, workers, seed)),
            rng_seed,
        ),
        _ => unreachable!("all shipped noise models covered above"),
    }
}

enum QuadAnswer {
    Item(Option<usize>),
    Clustering(Clustering),
    Dendrogram(Dendrogram),
}

fn direct_quad_answer(
    task: Task,
    noise: Noise,
    metric: &EuclideanMetric,
    rng_seed: u64,
    min_cluster_promise: Option<usize>,
) -> (QuadAnswer, u64) {
    fn drive<O: QuadrupletOracle + noisy_oracle::oracle::PersistentNoise>(
        task: Task,
        statistical: bool,
        mut oracle: Counting<O>,
        rng_seed: u64,
        m_promise: Option<usize>,
    ) -> (QuadAnswer, u64) {
        let n = oracle.n();
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let ans = match task {
            Task::Farthest { q } => QuadAnswer::Item(if statistical {
                farthest_prob(&mut oracle, q, 0.1, &AdvParams::default(), &mut rng)
            } else {
                farthest_adv(&mut oracle, q, &AdvParams::default(), &mut rng)
            }),
            Task::Nearest { q } => QuadAnswer::Item(if statistical {
                nearest_prob(&mut oracle, q, 0.1, &AdvParams::default(), &mut rng)
            } else {
                nearest_adv(&mut oracle, q, &AdvParams::default(), &mut rng)
            }),
            Task::KCenter { k } => QuadAnswer::Clustering(if statistical {
                let m = m_promise.unwrap_or_else(|| (n / (2 * k)).max(1));
                kcenter_prob(
                    &KCenterProbParams::experimental(k, m),
                    &mut oracle,
                    &mut rng,
                )
            } else {
                kcenter_adv(&KCenterAdvParams::experimental(k), &mut oracle, &mut rng)
            }),
            Task::Hierarchy { linkage } => QuadAnswer::Dendrogram(hier_oracle(
                &HierParams::experimental(linkage),
                &mut oracle,
                &mut rng,
            )),
            _ => unreachable!("metric tasks only"),
        };
        (ans, oracle.queries())
    }
    let statistical = matches!(noise, Noise::Probabilistic { .. } | Noise::Crowd { .. });
    match noise {
        Noise::Exact => drive(
            task,
            statistical,
            Counting::new(TrueQuadOracle::new(metric.clone())),
            rng_seed,
            min_cluster_promise,
        ),
        Noise::Adversarial { mu } => drive(
            task,
            statistical,
            Counting::new(AdversarialQuadOracle::new(
                metric.clone(),
                mu,
                InvertAdversary,
            )),
            rng_seed,
            min_cluster_promise,
        ),
        Noise::Probabilistic { p, seed } => drive(
            task,
            statistical,
            Counting::new(ProbQuadOracle::new(metric.clone(), p, seed)),
            rng_seed,
            min_cluster_promise,
        ),
        Noise::Crowd {
            profile,
            workers,
            seed,
        } => drive(
            task,
            statistical,
            Counting::new(CrowdQuadOracle::new(metric.clone(), profile, workers, seed)),
            rng_seed,
            min_cluster_promise,
        ),
        _ => unreachable!("all shipped noise models covered above"),
    }
}

enum OrderAnswer {
    Ranking(Vec<usize>),
    Item(Option<usize>),
    Split(Split<usize>),
}

/// Hand-wired twin of the facade's ordering dispatch: same oracle, same
/// comparator, same params resolution (defaults — the sessions under
/// test set no confidence), same rng seeding.
fn direct_order_answer(
    task: Task,
    noise: Noise,
    vals: &[f64],
    rng_seed: u64,
) -> (OrderAnswer, u64) {
    fn drive<O: ComparisonOracle>(
        task: Task,
        statistical: bool,
        mut oracle: Counting<O>,
        rng_seed: u64,
    ) -> (OrderAnswer, u64) {
        let items: Vec<usize> = (0..oracle.n()).collect();
        let mut rng = StdRng::seed_from_u64(rng_seed);
        let mut cmp = ValueCmp::new(&mut oracle);
        let ans = match task {
            Task::Sort => OrderAnswer::Ranking(if statistical {
                sort_prob(&items, &OrderProbParams::default(), &mut cmp)
            } else {
                sort_adv(&items, &OrderAdvParams::default(), &mut cmp)
            }),
            Task::Select { k } => OrderAnswer::Item(if statistical {
                select_prob(&items, k, &OrderProbParams::default(), &mut cmp, &mut rng)
            } else {
                select_adv(&items, k, &OrderAdvParams::default(), &mut cmp, &mut rng)
            }),
            Task::Partition { k } => OrderAnswer::Split(if statistical {
                partition_prob(&items, k, &OrderProbParams::default(), &mut cmp, &mut rng)
            } else {
                partition_adv(&items, k, &OrderAdvParams::default(), &mut cmp, &mut rng)
            }),
            _ => unreachable!("order tasks only"),
        };
        (ans, oracle.queries())
    }
    let statistical = matches!(noise, Noise::Probabilistic { .. } | Noise::Crowd { .. });
    match noise {
        Noise::Exact => drive(
            task,
            statistical,
            Counting::new(TrueValueOracle::new(vals.to_vec())),
            rng_seed,
        ),
        Noise::Adversarial { mu } => drive(
            task,
            statistical,
            Counting::new(AdversarialValueOracle::new(
                vals.to_vec(),
                mu,
                InvertAdversary,
            )),
            rng_seed,
        ),
        Noise::Probabilistic { p, seed } => drive(
            task,
            statistical,
            Counting::new(ProbValueOracle::new(vals.to_vec(), p, seed)),
            rng_seed,
        ),
        Noise::Crowd {
            profile,
            workers,
            seed,
        } => drive(
            task,
            statistical,
            Counting::new(CrowdValueOracle::new(vals.to_vec(), profile, workers, seed)),
            rng_seed,
        ),
        _ => unreachable!("all shipped noise models covered above"),
    }
}

#[test]
fn value_tasks_match_direct_calls_across_seeds_and_noise_models() {
    let vals = values(96);
    for seed in 0..SEEDS {
        for noise in noise_models(1000 + seed) {
            for task in [Task::Max, Task::TopK { k: 5 }] {
                let session = Session::builder()
                    .values(vals.clone())
                    .noise(noise)
                    .seed(seed)
                    .build()
                    .unwrap();
                let outcome = session.run(task).unwrap();
                let (item, list, queries) = direct_value_answer(task, noise, &vals, seed);
                match task {
                    Task::Max => assert_eq!(
                        outcome.answer.item(),
                        item,
                        "Max answer diverged ({noise:?}, seed {seed})"
                    ),
                    Task::TopK { .. } => assert_eq!(
                        outcome.answer.items().unwrap(),
                        &list[..],
                        "TopK answer diverged ({noise:?}, seed {seed})"
                    ),
                    _ => unreachable!(),
                }
                assert_eq!(
                    outcome.report.queries, queries,
                    "query count diverged ({task:?}, {noise:?}, seed {seed})"
                );
            }
        }
    }
}

#[test]
fn order_tasks_match_direct_calls_across_seeds_and_noise_models() {
    let vals = values(96);
    let tasks = [Task::Sort, Task::Select { k: 7 }, Task::Partition { k: 7 }];
    for seed in 0..SEEDS {
        for noise in noise_models(4000 + seed) {
            for task in tasks {
                let session = Session::builder()
                    .values(vals.clone())
                    .noise(noise)
                    .seed(seed)
                    .build()
                    .unwrap();
                let outcome = session.run(task).unwrap();
                let (direct, queries) = direct_order_answer(task, noise, &vals, seed);
                match direct {
                    OrderAnswer::Ranking(r) => assert_eq!(
                        outcome.answer.ranking(),
                        Some(&r[..]),
                        "ranking diverged ({noise:?}, seed {seed})"
                    ),
                    OrderAnswer::Item(i) => assert_eq!(
                        outcome.answer.item(),
                        i,
                        "selected item diverged ({noise:?}, seed {seed})"
                    ),
                    OrderAnswer::Split(s) => assert_eq!(
                        outcome.answer.partition(),
                        Some((&s.top[..], &s.rest[..])),
                        "partition diverged ({noise:?}, seed {seed})"
                    ),
                }
                assert_eq!(
                    outcome.report.queries, queries,
                    "query count diverged ({task:?}, {noise:?}, seed {seed})"
                );
            }
        }
    }
}

#[test]
fn metric_tasks_match_direct_calls_across_seeds_and_noise_models() {
    let metric = EuclideanMetric::from_points(&points(64));
    let tasks = [
        Task::Farthest { q: 3 },
        Task::Nearest { q: 3 },
        Task::KCenter { k: 4 },
        Task::Hierarchy {
            linkage: Linkage::Single,
        },
    ];
    for seed in 0..SEEDS {
        for noise in noise_models(2000 + seed) {
            for task in tasks {
                let session = Session::builder()
                    .metric(noisy_oracle::data::AnyMetric::Euclidean(metric.clone()))
                    .noise(noise)
                    .seed(seed)
                    .build()
                    .unwrap();
                let outcome = session.run(task).unwrap();
                let (direct, queries) = direct_quad_answer(task, noise, &metric, seed, None);
                match (&outcome.answer, direct) {
                    (a, QuadAnswer::Item(i)) => assert_eq!(
                        a.item(),
                        i,
                        "answer diverged ({task:?}, {noise:?}, seed {seed})"
                    ),
                    (a, QuadAnswer::Clustering(c)) => assert_eq!(
                        a.clustering(),
                        Some(&c),
                        "clustering diverged ({noise:?}, seed {seed})"
                    ),
                    (a, QuadAnswer::Dendrogram(d)) => assert_eq!(
                        a.dendrogram(),
                        Some(&d),
                        "dendrogram diverged ({noise:?}, seed {seed})"
                    ),
                }
                assert_eq!(
                    outcome.report.queries, queries,
                    "query count diverged ({task:?}, {noise:?}, seed {seed})"
                );
            }
        }
    }
}

/// The distance cache returns the lazy metric's own bits, so a cached
/// session must also be answer- and count-identical to the direct call.
#[test]
fn cached_sessions_stay_bit_identical() {
    let metric = EuclideanMetric::from_points(&points(48));
    for seed in 0..5u64 {
        let session = Session::builder()
            .metric(noisy_oracle::data::AnyMetric::Euclidean(metric.clone()))
            .cache_distances(true)
            .noise(Noise::Probabilistic {
                p: P,
                seed: 3000 + seed,
            })
            .seed(seed)
            .build()
            .unwrap();
        let task = Task::KCenter { k: 3 };
        let outcome = session.run(task).unwrap();
        let (direct, queries) = direct_quad_answer(
            task,
            Noise::Probabilistic {
                p: P,
                seed: 3000 + seed,
            },
            &metric,
            seed,
            None,
        );
        let QuadAnswer::Clustering(c) = direct else {
            unreachable!()
        };
        assert_eq!(outcome.answer.clustering(), Some(&c));
        assert_eq!(outcome.report.queries, queries);
        assert!(outcome.report.cache_entries.unwrap() > 0);
    }
}

/// `confidence(delta)` must route to the `with_confidence` parameter
/// constructors, still bit-identical to the hand-wired call.
#[test]
fn confidence_sessions_match_with_confidence_params() {
    let vals = values(64);
    for seed in 0..5u64 {
        let session = Session::builder()
            .values(vals.clone())
            .noise(Noise::Adversarial { mu: MU })
            .confidence(0.05)
            .seed(seed)
            .build()
            .unwrap();
        let got = session.run(Task::Max).unwrap();
        let mut oracle = Counting::new(AdversarialValueOracle::new(
            vals.clone(),
            MU,
            InvertAdversary,
        ));
        let items: Vec<usize> = (0..vals.len()).collect();
        let best = max_adv(
            &items,
            &AdvParams::with_confidence(0.05),
            &mut ValueCmp::new(&mut oracle),
            &mut StdRng::seed_from_u64(seed),
        );
        assert_eq!(got.answer.item(), best);
        assert_eq!(got.report.queries, oracle.queries());
    }
}

/// Multi-threaded hierarchy sessions route to the counter-stream SLINK
/// engine; they must match a hand-wired `hier_oracle_par` call (which is
/// itself bit-identical at any worker count).
#[test]
fn threaded_hierarchy_matches_counter_stream_engine() {
    let metric = EuclideanMetric::from_points(&points(40));
    for seed in 0..5u64 {
        let session = Session::builder()
            .metric(noisy_oracle::data::AnyMetric::Euclidean(metric.clone()))
            .noise(Noise::Probabilistic {
                p: 0.05,
                seed: 4000 + seed,
            })
            .threads(4)
            .seed(seed)
            .build()
            .unwrap();
        let outcome = session
            .run(Task::Hierarchy {
                linkage: Linkage::Single,
            })
            .unwrap();
        let mut oracle =
            SharedCounting::new(ProbQuadOracle::new(metric.clone(), 0.05, 4000 + seed));
        let dend = hier_oracle_par(
            &HierParams::experimental(Linkage::Single),
            &mut oracle,
            &mut StdRng::seed_from_u64(seed),
            4,
        );
        assert_eq!(outcome.answer.dendrogram(), Some(&dend));
        assert_eq!(outcome.report.queries, oracle.queries());
    }
}

/// Budget enforcement is deterministic at the configured cap: a budget
/// equal to the unconstrained tally succeeds with identical output, one
/// query less fails with `BudgetExceeded` — and never panics.
#[test]
fn budget_fires_deterministically_at_the_cap() {
    let metric = EuclideanMetric::from_points(&points(48));
    let mk = |budget: Option<u64>| {
        let mut b = Session::builder()
            .metric(noisy_oracle::data::AnyMetric::Euclidean(metric.clone()))
            .noise(Noise::Adversarial { mu: MU })
            .seed(9);
        if let Some(q) = budget {
            b = b.budget(q);
        }
        b.build().unwrap()
    };
    let task = Task::KCenter { k: 4 };
    let free = mk(None).run(task).unwrap();
    let need = free.report.queries;
    assert!(need > 1);

    // Budget exactly at the tally: identical run, same answer and count.
    let exact = mk(Some(need)).run(task).unwrap();
    assert_eq!(exact.answer, free.answer);
    assert_eq!(exact.report.queries, need);
    assert_eq!(exact.report.budget, Some(need));

    // One query less: typed failure, never more than `need - 1` issued.
    match mk(Some(need - 1)).run(task) {
        Err(NcoError::BudgetExceeded { budget, .. }) => assert_eq!(budget, need - 1),
        other => panic!("expected BudgetExceeded, got {other:?}"),
    }

    // Determinism of the failure: same error again on a fresh run.
    assert!(matches!(
        mk(Some(need - 1)).run(task),
        Err(NcoError::BudgetExceeded { .. })
    ));

    // Value tasks enforce the same way.
    let vals = values(64);
    let free = Session::builder()
        .values(vals.clone())
        .noise(Noise::Probabilistic { p: P, seed: 5 })
        .seed(3)
        .build()
        .unwrap()
        .run(Task::Max)
        .unwrap();
    let capped = Session::builder()
        .values(vals)
        .noise(Noise::Probabilistic { p: P, seed: 5 })
        .seed(3)
        .budget(free.report.queries - 1)
        .build()
        .unwrap();
    assert!(matches!(
        capped.run(Task::Max),
        Err(NcoError::BudgetExceeded { .. })
    ));
}

/// Memoised sessions bill like `Counting<MemoOracle<_>>` — hits are free,
/// misses are queries — and still return the direct call's answers.
#[test]
fn memoised_sessions_match_memoised_direct_calls() {
    use noisy_oracle::oracle::MemoOracle;
    let vals = values(80);
    for seed in 0..5u64 {
        let noise_seed = 6000 + seed;
        let session = Session::builder()
            .values(vals.clone())
            .noise(Noise::Probabilistic {
                p: P,
                seed: noise_seed,
            })
            .memoize(true)
            .seed(seed)
            .build()
            .unwrap();
        let outcome = session.run(Task::Max).unwrap();
        // The repo's memoisation idiom: memo outside, meter inside —
        // hits are free, only real oracle queries count.
        let mut oracle = MemoOracle::new(Counting::new(ProbValueOracle::new(
            vals.clone(),
            P,
            noise_seed,
        )));
        let items: Vec<usize> = (0..vals.len()).collect();
        let best = max_prob(
            &items,
            &ProbParams::default(),
            &mut ValueCmp::new(&mut oracle),
            &mut StdRng::seed_from_u64(seed),
        );
        assert_eq!(outcome.answer.item(), best);
        assert_eq!(outcome.report.memo_hits, Some(oracle.hits()));
        assert_eq!(outcome.report.queries, oracle.inner().queries());
    }
}
