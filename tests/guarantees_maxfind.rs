//! Deterministic guarantee tests for the Section 3 machinery (maximum and
//! top-k under noise), built on `nco_testkit`.
//!
//! Every test fixes its seeds, so two consecutive `cargo test` runs make
//! identical oracle draws and identical algorithm coins. Probabilistic
//! guarantees ("w.p. >= 1 - delta") are checked as success rates over a
//! seeded trial block rather than per-run hard assertions, mirroring how
//! the theorems are stated.

use nco_core::comparator::ValueCmp;
use nco_core::maxfind::{
    count_max, max_adv, max_prob, top_k_adv, top_k_prob, AdvParams, ProbParams,
};
use nco_testkit::{
    assert_max_within_factor, assert_rank_at_most, success_rate, Counting, ValueScenario,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Theorem 3.6 at three noise levels: Max-Adv returns a value within
/// `(1 + mu)^3` of the maximum against the worst-case in-band adversary,
/// in at least 9 of 10 seeded trials per level (`delta = 0.1` with slack
/// already built into `with_confidence`).
#[test]
fn max_adv_theorem_3_6_bound_across_noise_levels() {
    for &mu in &[0.2, 0.5, 1.0] {
        let scenario = ValueScenario::shuffled_geometric(220, 1.0 + mu * 0.4, 0xA0);
        let rate = success_rate(10, 500, |seed| {
            let mut oracle = scenario.adversarial_oracle(mu);
            let chosen = max_adv(
                &scenario.items,
                &AdvParams::with_confidence(0.1),
                &mut ValueCmp::new(&mut oracle),
                &mut rng(seed),
            )
            .unwrap();
            let vmax = scenario.true_max();
            scenario.values[chosen] * (1.0 + mu).powi(3) >= vmax - 1e-9
        });
        assert!(
            rate >= 0.9,
            "mu = {mu}: bound held in only {rate} of trials"
        );
    }
}

/// The `mu = 0` degenerate case: with an exact oracle Max-Adv must return
/// the true maximum on every seed (the tournament winner is exact when no
/// duel can lie).
#[test]
fn max_adv_exact_oracle_is_exact_every_seed() {
    let scenario = ValueScenario::shuffled_linear(300, 0xA1);
    for seed in 0..8 {
        let mut oracle = scenario.exact_oracle();
        let chosen = max_adv(
            &scenario.items,
            &AdvParams::with_confidence(0.05),
            &mut ValueCmp::new(&mut oracle),
            &mut rng(seed),
        )
        .unwrap();
        assert_max_within_factor(
            &scenario.values,
            chosen,
            1.0,
            &format!("max_adv, exact oracle, seed {seed}"),
        );
    }
}

/// Lemma 3.1: Count-Max (no internal randomness) is within `(1 + mu)^2`
/// of the maximum under any adversarial strategy, deterministically.
#[test]
fn count_max_lemma_3_1_bound_is_deterministic() {
    for &mu in &[0.3, 0.8, 1.5] {
        for seed in [7u64, 8, 9] {
            let scenario = ValueScenario::shuffled_geometric(150, 1.0 + mu * 0.3, seed);
            let mut oracle = scenario.adversarial_random_oracle(mu, seed ^ 0xFF);
            let chosen = count_max(&scenario.items, &mut ValueCmp::new(&mut oracle)).unwrap();
            assert_max_within_factor(
                &scenario.values,
                chosen,
                (1.0 + mu) * (1.0 + mu),
                &format!("count_max, mu = {mu}, scenario seed {seed}"),
            );
        }
    }
}

/// Theorem 3.7 at two persistence levels: Count-Max-Prob's returned rank
/// stays polylogarithmic (`log2(n)^2 ~ 68` at n = 500; the experiments do
/// far better, so the median over seeds must be single-digit).
#[test]
fn max_prob_theorem_3_7_rank_across_noise_levels() {
    for (p, median_bound) in [(0.1, 10), (0.25, 25)] {
        let scenario = ValueScenario::shuffled_linear(500, 0xB0);
        let mut ranks: Vec<usize> = (0..10)
            .map(|seed| {
                let mut oracle = scenario.probabilistic_oracle(p, 9000 + seed);
                let chosen = max_prob(
                    &scenario.items,
                    &ProbParams::experimental(),
                    &mut ValueCmp::new(&mut oracle),
                    &mut rng(700 + seed),
                )
                .unwrap();
                scenario.max_rank(chosen)
            })
            .collect();
        ranks.sort_unstable();
        let median = ranks[ranks.len() / 2];
        let worst = *ranks.last().unwrap();
        assert!(
            median <= median_bound,
            "p = {p}: median rank {median} > {median_bound} (ranks {ranks:?})"
        );
        assert!(worst <= 68, "p = {p}: worst rank {worst} exceeds log^2 n");
    }
}

/// Top-k under adversarial noise: every extracted item is within
/// `(1 + mu)^3` of the maximum of the set it was extracted from, so the
/// i-th pick is within that factor of the true i-th value.
#[test]
fn top_k_adv_per_round_guarantee() {
    let mu = 0.4;
    let scenario = ValueScenario::shuffled_geometric(120, 1.25, 0xC0);
    let mut sorted = scenario.values.clone();
    sorted.sort_by(|a, b| b.total_cmp(a)); // descending true order
    let k = 10;
    let rate = success_rate(8, 40, |seed| {
        let mut oracle = scenario.adversarial_oracle(mu);
        let picks = top_k_adv(
            &scenario.items,
            k,
            &AdvParams::with_confidence(0.05),
            &mut ValueCmp::new(&mut oracle),
            &mut rng(seed),
        );
        picks.iter().enumerate().all(|(i, &v)| {
            // The i-th pick competes against a set whose max is at least
            // the true (i+1)-th value.
            scenario.values[v] * (1.0 + mu).powi(3) >= sorted[i] - 1e-9
        })
    });
    assert!(
        rate >= 0.85,
        "per-round top-k bound held in only {rate} of trials"
    );
}

/// Top-k under probabilistic noise: all k picks stay inside a small head
/// of the true order (rank <= 6k) in most trials.
#[test]
fn top_k_prob_stays_in_the_head() {
    let scenario = ValueScenario::shuffled_linear(400, 0xC1);
    let k = 5;
    let rate = success_rate(8, 60, |seed| {
        let mut oracle = scenario.probabilistic_oracle(0.15, 4000 + seed);
        let picks = top_k_prob(
            &scenario.items,
            k,
            &ProbParams::experimental(),
            &mut ValueCmp::new(&mut oracle),
            &mut rng(seed),
        );
        picks.len() == k && picks.iter().all(|&v| scenario.max_rank(v) <= 6 * k)
    });
    assert!(
        rate >= 0.85,
        "top-k-prob head bound held in only {rate} of trials"
    );
}

/// Theorem 3.6's cost side: Max-Adv stays within an `O(n log^2(1/delta))`
/// oracle-query budget, metered through the counting wrapper.
#[test]
fn max_adv_query_budget() {
    for n in [256usize, 1024] {
        let scenario = ValueScenario::shuffled_linear(n, 0xD0);
        let mut oracle = Counting::new(scenario.exact_oracle());
        let delta = 0.1;
        let _ = max_adv(
            &scenario.items,
            &AdvParams::with_confidence(delta),
            &mut ValueCmp::new(&mut oracle),
            &mut rng(12),
        );
        let log_term = (1.0 / delta).log2();
        let budget = (16.0 * n as f64 * log_term * log_term) as u64;
        assert!(
            oracle.queries() <= budget,
            "n = {n}: {} queries exceed budget {budget}",
            oracle.queries()
        );
    }
}

/// Reproducibility contract: identical seeds give identical picks, and the
/// rank helper agrees with `assert_rank_at_most`'s bound formulation.
#[test]
fn maxfind_runs_are_bit_reproducible() {
    let scenario = ValueScenario::shuffled_geometric(180, 1.3, 0xE0);
    let run = || {
        let mut oracle = scenario.adversarial_oracle(0.5);
        max_adv(
            &scenario.items,
            &AdvParams::experimental(),
            &mut ValueCmp::new(&mut oracle),
            &mut rng(77),
        )
        .unwrap()
    };
    let chosen = nco_testkit::assert_deterministic("max_adv seed 77", run);
    assert_rank_at_most(&scenario.values, chosen, 180, "rank is always defined");
}
