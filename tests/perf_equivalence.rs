//! Equivalence guarantees behind the PR-2..PR-5 performance work.
//!
//! Four families of checks:
//!
//! 1. **Memoisation is invisible.** Under every persistent noise model,
//!    an algorithm run over `MemoOracle<O>` must make bit-identical
//!    decisions to the same run over `O` — the persistent-noise property
//!    (Section 2.2) makes the cache semantically exact, and these tests
//!    pin that end to end (max-finding, farthest search, k-center,
//!    hierarchical clustering).
//! 2. **Batch == scalar.** Every oracle's `le_batch` (and every
//!    comparator's `le_round`) must produce bit-identical answers and
//!    identical metered query counts to the scalar loop, across ≥20
//!    seeds and every shipped noise model — including the PR 5 crowd
//!    committee override (per-round distance + answer dedup).
//! 3. **Distance caching is invisible.** Algorithms over
//!    `CachedMetric<M>`-backed oracles make bit-identical decisions with
//!    identical query totals to the same oracles over the raw `M`.
//! 4. **Parallel == serial.** With the `parallel` feature, the fan-out
//!    variants (including `hier_oracle_par`'s counter-stream SLINK
//!    initialisation) must return bit-identical outputs *and* identical
//!    query totals across 20 seeds.

use nco_core::comparator::ValueCmp;
use nco_core::hier::{hier_oracle, HierParams, Linkage};
use nco_core::kcenter::{kcenter_adv, KCenterAdvParams};
use nco_core::maxfind::{max_adv, max_prob, AdvParams, ProbParams};
use nco_core::neighbor::{farthest_adv, nearest_adv};
use nco_oracle::memo::MemoOracle;
use nco_testkit::{MetricScenario, ValueScenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Count-Max-Prob over a memoised persistent probabilistic oracle returns
/// exactly what it returns over the raw oracle, for every seed.
#[test]
fn memo_is_bit_identical_for_max_prob() {
    let scenario = ValueScenario::shuffled_linear(300, 11);
    let params = ProbParams::experimental();
    for seed in 0..20u64 {
        let mut raw = scenario.probabilistic_oracle(0.2, 500 + seed);
        let mut memo = MemoOracle::new(scenario.probabilistic_oracle(0.2, 500 + seed));
        let a = max_prob(
            &scenario.items,
            &params,
            &mut ValueCmp::new(&mut raw),
            &mut rng(seed),
        );
        let b = max_prob(
            &scenario.items,
            &params,
            &mut ValueCmp::new(&mut memo),
            &mut rng(seed),
        );
        assert_eq!(a, b, "seed {seed}");
        assert!(memo.lookups() > 0, "memo must have been exercised");
    }
}

/// Max-Adv over a memoised adversarial oracle (worst-case in-band liar —
/// persistent because the strategy is a pure function of the query).
#[test]
fn memo_is_bit_identical_for_max_adv() {
    let scenario = ValueScenario::shuffled_geometric(256, 1.2, 3);
    let params = AdvParams::with_confidence(0.1);
    for seed in 0..20u64 {
        let mut raw = scenario.adversarial_oracle(0.5);
        let mut memo = MemoOracle::new(scenario.adversarial_oracle(0.5));
        let a = max_adv(
            &scenario.items,
            &params,
            &mut ValueCmp::new(&mut raw),
            &mut rng(900 + seed),
        );
        let b = max_adv(
            &scenario.items,
            &params,
            &mut ValueCmp::new(&mut memo),
            &mut rng(900 + seed),
        );
        assert_eq!(a, b, "seed {seed}");
    }
    // Same check under the persistent random in-band strategy.
    for seed in 0..5u64 {
        let mut raw = scenario.adversarial_random_oracle(0.5, 70 + seed);
        let mut memo = MemoOracle::new(scenario.adversarial_random_oracle(0.5, 70 + seed));
        let a = max_adv(
            &scenario.items,
            &params,
            &mut ValueCmp::new(&mut raw),
            &mut rng(40 + seed),
        );
        let b = max_adv(
            &scenario.items,
            &params,
            &mut ValueCmp::new(&mut memo),
            &mut rng(40 + seed),
        );
        assert_eq!(a, b, "random-adversary seed {seed}");
    }
}

/// Farthest/nearest neighbour search over a memoised quadruplet oracle.
#[test]
fn memo_is_bit_identical_for_neighbor_search() {
    let scenario = MetricScenario::separated_blobs(4, 40, 50.0, 17);
    let params = AdvParams::with_confidence(0.1);
    for seed in 0..10u64 {
        let mut raw = scenario.probabilistic_oracle(0.15, 60 + seed);
        let mut memo = MemoOracle::new(scenario.probabilistic_oracle(0.15, 60 + seed));
        let q = (seed as usize * 13) % scenario.n();
        assert_eq!(
            farthest_adv(&mut raw, q, &params, &mut rng(seed)),
            farthest_adv(&mut memo, q, &params, &mut rng(seed)),
            "farthest seed {seed}"
        );
        assert_eq!(
            nearest_adv(&mut raw, q, &params, &mut rng(1000 + seed)),
            nearest_adv(&mut memo, q, &params, &mut rng(1000 + seed)),
            "nearest seed {seed}"
        );
    }
}

/// k-center and the full SLINK hierarchy over memoised quadruplet oracles
/// (crowd noise included — the majority over persistent workers is itself
/// persistent).
#[test]
fn memo_is_bit_identical_for_kcenter_and_hierarchy() {
    let scenario = MetricScenario::separated_blobs(4, 20, 40.0, 23);
    for seed in 0..5u64 {
        let params = KCenterAdvParams::experimental(4);
        let mut raw = scenario.adversarial_oracle(0.3);
        let mut memo = MemoOracle::new(scenario.adversarial_oracle(0.3));
        let a = kcenter_adv(&params, &mut raw, &mut rng(300 + seed));
        let b = kcenter_adv(&params, &mut memo, &mut rng(300 + seed));
        assert_eq!(a.centers, b.centers, "kcenter centers seed {seed}");
        assert_eq!(a.assignment, b.assignment, "kcenter assignment seed {seed}");

        let hier_params = HierParams::experimental(Linkage::Single);
        let mut raw = scenario.probabilistic_oracle(0.1, 80 + seed);
        let mut memo = MemoOracle::new(scenario.probabilistic_oracle(0.1, 80 + seed));
        let da = hier_oracle(&hier_params, &mut raw, &mut rng(600 + seed));
        let db = hier_oracle(&hier_params, &mut memo, &mut rng(600 + seed));
        assert_eq!(da.merges, db.merges, "hierarchy seed {seed}");
        assert!(
            memo.hits() > 0,
            "SLINK revisits pairs; the cache must hit (seed {seed})"
        );
    }
}

mod batch_equivalence {
    use super::*;
    use nco_core::comparator::{Comparator, DistToQueryCmp, Rev};
    use nco_core::maxfind::count_scores;
    use nco_oracle::adversarial::PersistentRandomAdversary;
    use nco_oracle::crowd::AccuracyProfile;
    use nco_oracle::{ComparisonOracle, Counting, QuadrupletOracle};

    /// A comparator wrapper that deliberately does **not** forward
    /// `le_round`, forcing the trait's default scalar loop — the
    /// reference the batched plumbing is checked against.
    struct ScalarOnly<C>(C);

    impl<I: Copy, C: Comparator<I>> Comparator<I> for ScalarOnly<C> {
        fn le(&mut self, a: I, b: I) -> bool {
            self.0.le(a, b)
        }
    }

    /// Seeded pseudo-random quadruplet batch over `n` records, shaped
    /// like real rounds: a mix of anchored scans, repeated pivots,
    /// mirrored queries and degenerate (tied) pairs.
    fn quad_batch(n: usize, seed: u64, len: usize) -> Vec<[usize; 4]> {
        let mut r = rng(seed);
        use rand::Rng;
        (0..len)
            .map(|i| {
                let a = r.random_range(0..n);
                let b = r.random_range(0..n);
                let c = if i % 3 == 0 { a } else { r.random_range(0..n) };
                let d = if i % 7 == 0 { b } else { r.random_range(0..n) };
                [a, b, c, d]
            })
            .collect()
    }

    fn assert_quad_batch_matches_scalar<O, F>(make: F, label: &str)
    where
        O: QuadrupletOracle,
        F: Fn(u64) -> O,
    {
        for seed in 0..20u64 {
            let mut scalar_oracle = Counting::new(make(seed));
            let mut batch_oracle = Counting::new(make(seed));
            let queries = quad_batch(scalar_oracle.inner().n(), 9000 + seed, 400);
            let scalar: Vec<bool> = queries
                .iter()
                .map(|&[a, b, c, d]| scalar_oracle.le(a, b, c, d))
                .collect();
            let mut batched = Vec::new();
            batch_oracle.le_batch(&queries, &mut batched);
            assert_eq!(scalar, batched, "{label}: answers differ at seed {seed}");
            assert_eq!(
                scalar_oracle.queries(),
                batch_oracle.queries(),
                "{label}: query totals differ at seed {seed}"
            );
        }
    }

    /// Every shipped quadruplet-oracle noise model answers a batch
    /// bit-identically to the scalar loop, with identical metered counts.
    #[test]
    fn quad_le_batch_matches_scalar_for_every_noise_model() {
        let scenario = MetricScenario::separated_blobs(4, 16, 40.0, 31);
        assert_quad_batch_matches_scalar(|_| scenario.exact_oracle(), "exact");
        assert_quad_batch_matches_scalar(
            |seed| scenario.probabilistic_oracle(0.25, seed),
            "probabilistic",
        );
        assert_quad_batch_matches_scalar(|_| scenario.adversarial_oracle(0.4), "adversarial");
        assert_quad_batch_matches_scalar(
            |seed| {
                nco_oracle::adversarial::AdversarialQuadOracle::new(
                    scenario.metric.clone(),
                    0.4,
                    PersistentRandomAdversary::new(seed),
                )
            },
            "adversarial-random",
        );
        assert_quad_batch_matches_scalar(
            |seed| scenario.crowd_oracle(AccuracyProfile::caltech_like(), seed),
            "crowd",
        );
        assert_quad_batch_matches_scalar(
            |seed| MemoOracle::new(scenario.probabilistic_oracle(0.25, seed)),
            "memoised",
        );
    }

    /// The comparison-oracle side of the same property.
    #[test]
    fn value_le_batch_matches_scalar_for_every_noise_model() {
        let scenario = ValueScenario::shuffled_linear(120, 3);
        let mut pair_queries: Vec<(usize, usize)> = Vec::new();
        let mut r = rng(77);
        use rand::Rng;
        for i in 0..400 {
            let a = r.random_range(0..120);
            let b = if i % 5 == 0 {
                a
            } else {
                r.random_range(0..120)
            };
            pair_queries.push((a, b));
        }
        for seed in 0..20u64 {
            let mut scalar = Counting::new(scenario.probabilistic_oracle(0.3, 100 + seed));
            let mut batch = Counting::new(scenario.probabilistic_oracle(0.3, 100 + seed));
            let expect: Vec<bool> = pair_queries.iter().map(|&(i, j)| scalar.le(i, j)).collect();
            let mut got = Vec::new();
            batch.le_batch(&pair_queries, &mut got);
            assert_eq!(expect, got, "seed {seed}");
            assert_eq!(scalar.queries(), batch.queries(), "seed {seed}");
        }
        let mut adv_scalar = Counting::new(scenario.adversarial_oracle(0.5));
        let mut adv_batch = Counting::new(scenario.adversarial_oracle(0.5));
        let expect: Vec<bool> = pair_queries
            .iter()
            .map(|&(i, j)| adv_scalar.le(i, j))
            .collect();
        let mut got = Vec::new();
        adv_batch.le_batch(&pair_queries, &mut got);
        assert_eq!(expect, got);
        assert_eq!(adv_scalar.queries(), adv_batch.queries());
    }

    /// The PR 5 crowd `le_batch` override (per-round distance dedup +
    /// committee-answer dedup + short-circuited majority votes) is
    /// bit-identical to the scalar committee loop on repeat-heavy rounds,
    /// for both cliff and flat accuracy profiles, across 20 seeds.
    #[test]
    fn crowd_quad_le_batch_override_matches_scalar_across_20_seeds() {
        let scenario = MetricScenario::separated_blobs(4, 12, 30.0, 41);
        let n = scenario.n();
        for profile in [
            AccuracyProfile::caltech_like(),
            AccuracyProfile::amazon_like(),
        ] {
            for seed in 0..20u64 {
                let mut scalar = Counting::new(scenario.crowd_oracle(profile, 7000 + seed));
                let mut batch = Counting::new(scenario.crowd_oracle(profile, 7000 + seed));
                // A Count-Max-pool-shaped round: p(p-1)/2 queries over only
                // p distinct pairs — the dedup-heavy case — plus mirrored
                // and degenerate queries.
                let pairs: Vec<(usize, usize)> = (0..8)
                    .map(|i| ((i * 5) % n, ((i * 5) + 1 + i % 3) % n))
                    .collect();
                let mut queries: Vec<[usize; 4]> = Vec::new();
                for i in 0..pairs.len() {
                    for j in 0..pairs.len() {
                        if i != j {
                            let (a, b) = pairs[i];
                            let (c, d) = pairs[j];
                            queries.push([a, b, c, d]);
                            queries.push([b, a, c, d]);
                        }
                    }
                }
                queries.extend(quad_batch(n, 9500 + seed, 150));
                let expect: Vec<bool> = queries
                    .iter()
                    .map(|&[a, b, c, d]| scalar.le(a, b, c, d))
                    .collect();
                let mut got = Vec::new();
                batch.le_batch(&queries, &mut got);
                assert_eq!(expect, got, "profile {profile:?}, seed {seed}");
                assert_eq!(scalar.queries(), batch.queries(), "seed {seed}");
            }
        }
    }

    /// The value-oracle twin: `CrowdValueOracle::le_batch` serves repeated
    /// canonical pairs from the round answer cache, bit-identically.
    #[test]
    fn crowd_value_le_batch_override_matches_scalar_across_20_seeds() {
        use nco_oracle::crowd::CrowdValueOracle;
        let values: Vec<f64> = (1..=60).map(|i| (i * i) as f64).collect();
        for profile in [
            AccuracyProfile::caltech_like(),
            AccuracyProfile::amazon_like(),
        ] {
            for seed in 0..20u64 {
                let mut scalar =
                    Counting::new(CrowdValueOracle::new(values.clone(), profile, 3, 80 + seed));
                let mut batch =
                    Counting::new(CrowdValueOracle::new(values.clone(), profile, 3, 80 + seed));
                let mut queries: Vec<(usize, usize)> = Vec::new();
                let mut r = rng(1200 + seed);
                use rand::Rng;
                for i in 0..300 {
                    let a = r.random_range(0..60);
                    // Heavy repetition: a small anchor set keeps recurring.
                    let b = if i % 2 == 0 {
                        (i / 2) % 7
                    } else {
                        r.random_range(0..60)
                    };
                    queries.push((a, b));
                    queries.push((b, a));
                }
                let expect: Vec<bool> = queries.iter().map(|&(i, j)| scalar.le(i, j)).collect();
                let mut got = Vec::new();
                batch.le_batch(&queries, &mut got);
                assert_eq!(expect, got, "profile {profile:?}, seed {seed}");
                assert_eq!(scalar.queries(), batch.queries(), "seed {seed}");
            }
        }
    }

    /// The Count-Max scoring triangle routed through `le_round` produces
    /// the scores (and bills the queries) of the scalar double loop — for
    /// the plain comparator, the reversed one, and the oracle-batching
    /// distance comparator.
    #[test]
    fn count_scores_round_matches_scalar_loop() {
        let scenario = MetricScenario::separated_blobs(3, 20, 30.0, 7);
        for seed in 0..20u64 {
            let items: Vec<usize> = (0..scenario.n()).step_by(2).collect();
            let q = ((seed as usize * 7) % scenario.n()) | 1; // odd: not in items

            let mut scalar_oracle = Counting::new(scenario.probabilistic_oracle(0.2, seed));
            let scalar = count_scores(
                &items,
                &mut ScalarOnly(DistToQueryCmp::new(&mut scalar_oracle, q)),
            );
            let mut batched_oracle = Counting::new(scenario.probabilistic_oracle(0.2, seed));
            let batched = count_scores(&items, &mut DistToQueryCmp::new(&mut batched_oracle, q));
            assert_eq!(scalar, batched, "seed {seed}");
            assert_eq!(
                scalar_oracle.queries(),
                batched_oracle.queries(),
                "seed {seed}"
            );

            let mut rev_scalar_oracle = Counting::new(scenario.probabilistic_oracle(0.2, seed));
            let rev_scalar = count_scores(
                &items,
                &mut ScalarOnly(Rev(DistToQueryCmp::new(&mut rev_scalar_oracle, q))),
            );
            let mut rev_batched_oracle = Counting::new(scenario.probabilistic_oracle(0.2, seed));
            let rev_batched = count_scores(
                &items,
                &mut Rev(DistToQueryCmp::new(&mut rev_batched_oracle, q)),
            );
            assert_eq!(rev_scalar, rev_batched, "rev seed {seed}");
            assert_eq!(
                rev_scalar_oracle.queries(),
                rev_batched_oracle.queries(),
                "rev seed {seed}"
            );
        }
    }
}

mod dist_cache_equivalence {
    use super::*;
    use nco_metric::CachedMetric;
    use nco_oracle::adversarial::{AdversarialQuadOracle, InvertAdversary};
    use nco_oracle::probabilistic::ProbQuadOracle;
    use nco_oracle::Counting;

    /// Neighbour searches, k-center and the SLINK hierarchy over a
    /// `CachedMetric`-backed oracle are bit-identical — outputs and query
    /// totals — to the same runs over the raw metric, across 20 seeds.
    /// (The cache returns the lazy metric's own `f64`s, so persistent
    /// noise cannot observe it.)
    #[test]
    fn cached_metric_is_bit_identical_end_to_end() {
        let scenario = MetricScenario::separated_blobs(4, 24, 45.0, 29);
        let params = AdvParams::with_confidence(0.1);
        for seed in 0..20u64 {
            let raw_metric = scenario.metric.clone();
            let cached = CachedMetric::new(scenario.metric.clone());
            let q = (seed as usize * 11) % scenario.n();

            let mut raw = Counting::new(ProbQuadOracle::new(raw_metric.clone(), 0.15, seed));
            let mut opt = Counting::new(ProbQuadOracle::new(&cached, 0.15, seed));
            assert_eq!(
                farthest_adv(&mut raw, q, &params, &mut rng(seed)),
                farthest_adv(&mut opt, q, &params, &mut rng(seed)),
                "farthest seed {seed}"
            );
            assert_eq!(
                nearest_adv(&mut raw, q, &params, &mut rng(50 + seed)),
                nearest_adv(&mut opt, q, &params, &mut rng(50 + seed)),
                "nearest seed {seed}"
            );
            assert_eq!(raw.queries(), opt.queries(), "neighbor queries seed {seed}");

            let kparams = KCenterAdvParams::experimental(4);
            let mut raw = Counting::new(AdversarialQuadOracle::new(
                raw_metric.clone(),
                0.3,
                InvertAdversary,
            ));
            let mut opt = Counting::new(AdversarialQuadOracle::new(&cached, 0.3, InvertAdversary));
            let a = kcenter_adv(&kparams, &mut raw, &mut rng(200 + seed));
            let b = kcenter_adv(&kparams, &mut opt, &mut rng(200 + seed));
            assert_eq!(a.centers, b.centers, "kcenter centers seed {seed}");
            assert_eq!(a.assignment, b.assignment, "kcenter assignment seed {seed}");
            assert_eq!(raw.queries(), opt.queries(), "kcenter queries seed {seed}");
        }
        // Hierarchy once per a few seeds (it is the slow one).
        for seed in 0..5u64 {
            let cached = CachedMetric::new(scenario.metric.clone());
            let hier_params = HierParams::experimental(Linkage::Single);
            let mut raw =
                Counting::new(ProbQuadOracle::new(scenario.metric.clone(), 0.1, 70 + seed));
            let mut opt = Counting::new(ProbQuadOracle::new(&cached, 0.1, 70 + seed));
            let da = hier_oracle(&hier_params, &mut raw, &mut rng(600 + seed));
            let db = hier_oracle(&hier_params, &mut opt, &mut rng(600 + seed));
            assert_eq!(da.merges, db.merges, "hierarchy seed {seed}");
            assert_eq!(
                raw.queries(),
                opt.queries(),
                "hierarchy queries seed {seed}"
            );
            assert!(
                cached.cache().filled() > 0,
                "the cache must have been exercised"
            );
        }
    }
}

/// Round accounting is exact under memoisation: `RunReport.rounds` for a
/// memoised run equals the plain run's count (the memo used to decompose
/// rounds into scalar lookups, reading 0).
mod round_accounting {
    use nco_core::hier::Linkage;
    use noisy_oracle::{Noise, Session, Task};

    #[test]
    fn memoised_sessions_report_the_same_rounds_as_plain_across_20_seeds() {
        let points: Vec<Vec<f64>> = (0..48)
            .map(|i| vec![(i % 7) as f64 * 1.9, (i / 7) as f64])
            .collect();
        for seed in 0..20u64 {
            for task in [
                Task::Hierarchy {
                    linkage: Linkage::Single,
                },
                Task::KCenter { k: 4 },
                Task::Farthest {
                    q: seed as usize % 48,
                },
            ] {
                let build = |memo: bool| {
                    Session::builder()
                        .points(&points)
                        .noise(Noise::Probabilistic {
                            p: 0.15,
                            seed: 9000 + seed,
                        })
                        .memoize(memo)
                        .seed(seed)
                        .build()
                        .unwrap()
                };
                let plain = build(false).run(task).unwrap();
                let memo = build(true).run(task).unwrap();
                assert_eq!(
                    plain.answer, memo.answer,
                    "answer differs at seed {seed}, {task:?}"
                );
                assert_eq!(
                    plain.report.rounds, memo.report.rounds,
                    "round totals differ at seed {seed}, {task:?}"
                );
                if matches!(task, Task::Hierarchy { .. }) {
                    assert!(
                        plain.report.rounds > 0,
                        "hierarchy runs are round-driven (seed {seed})"
                    );
                    assert!(
                        memo.report.memo_hits.unwrap() > 0,
                        "repeats should hit the memo (seed {seed})"
                    );
                }
            }
        }
    }
}

#[cfg(feature = "parallel")]
mod parallel_equivalence {
    use super::*;
    use nco_core::maxfind::{count_max, count_max_par, max_prob_par, tournament, tournament_par};
    use nco_core::parallel::{AtomicCountingCmp, SharedValueCmp};
    use nco_testkit::CountingCmp;

    /// Count-Max-Prob: serial vs 4-thread fan-out across 20 seeds —
    /// bit-identical winners and identical comparator call totals.
    #[test]
    fn max_prob_parallel_matches_serial_across_20_seeds() {
        let scenario = ValueScenario::shuffled_linear(600, 5);
        let params = ProbParams::experimental();
        for seed in 0..20u64 {
            let mut serial_oracle = scenario.probabilistic_oracle(0.2, 2000 + seed);
            let mut serial_cmp = CountingCmp::new(ValueCmp::new(&mut serial_oracle));
            let serial = max_prob(&scenario.items, &params, &mut serial_cmp, &mut rng(seed));
            let serial_calls = serial_cmp.calls();

            let par_oracle = scenario.probabilistic_oracle(0.2, 2000 + seed);
            let par_cmp = AtomicCountingCmp::new(SharedValueCmp::new(&par_oracle));
            let par = max_prob_par(&scenario.items, &params, &par_cmp, &mut rng(seed), 4);

            assert_eq!(serial, par, "winner differs at seed {seed}");
            assert_eq!(
                serial_calls,
                par_cmp.calls(),
                "query totals differ at seed {seed}"
            );
        }
    }

    /// λ-ary tournament: serial vs fan-out for λ in {2, 3, 8}.
    #[test]
    fn tournament_parallel_matches_serial_across_20_seeds() {
        let scenario = ValueScenario::shuffled_linear(257, 9);
        for seed in 0..20u64 {
            for lambda in [2usize, 3, 8] {
                let mut serial_oracle = scenario.probabilistic_oracle(0.25, 4000 + seed);
                let mut serial_cmp = CountingCmp::new(ValueCmp::new(&mut serial_oracle));
                let serial = tournament(&scenario.items, lambda, &mut serial_cmp, &mut rng(seed));
                let serial_calls = serial_cmp.calls();

                let par_oracle = scenario.probabilistic_oracle(0.25, 4000 + seed);
                let par_cmp = AtomicCountingCmp::new(SharedValueCmp::new(&par_oracle));
                let par = tournament_par(&scenario.items, lambda, &par_cmp, &mut rng(seed), 4);

                assert_eq!(
                    serial, par,
                    "winner differs at seed {seed}, lambda {lambda}"
                );
                assert_eq!(
                    serial_calls,
                    par_cmp.calls(),
                    "query totals differ at seed {seed}, lambda {lambda}"
                );
            }
        }
    }

    /// Counter-stream SLINK: the initial nearest-neighbour pass fanned
    /// across 4 workers returns the identical dendrogram and query total
    /// as the single-worker run, across 20 seeds — per-row `CounterRng`
    /// streams make the rows rng-independent, so scheduling cannot leak
    /// into the output.
    #[test]
    fn hier_oracle_par_fan_out_matches_single_worker_across_20_seeds() {
        use nco_core::hier::hier_oracle_par;
        use nco_oracle::SharedCounting;
        let scenario = MetricScenario::separated_blobs(4, 16, 35.0, 13);
        let params = HierParams::experimental(Linkage::Single);
        for seed in 0..20u64 {
            let mut serial = SharedCounting::new(scenario.probabilistic_oracle(0.1, 3000 + seed));
            let a = hier_oracle_par(&params, &mut serial, &mut rng(seed), 1);
            let mut par = SharedCounting::new(scenario.probabilistic_oracle(0.1, 3000 + seed));
            let b = hier_oracle_par(&params, &mut par, &mut rng(seed), 4);
            assert_eq!(a, b, "dendrogram differs at seed {seed}");
            assert_eq!(
                serial.queries(),
                par.queries(),
                "query totals differ at seed {seed}"
            );
        }
    }

    /// Counter-stream SLINK over a `CachedMetric` fanned across workers —
    /// the perfsuite `slink_n1024` optimized configuration exactly —
    /// equals the lazy single-worker run.
    #[test]
    fn hier_oracle_par_with_dist_cache_matches_lazy_serial() {
        use nco_core::hier::hier_oracle_par;
        use nco_metric::CachedMetric;
        use nco_oracle::probabilistic::ProbQuadOracle;
        use nco_oracle::SharedCounting;
        let scenario = MetricScenario::separated_blobs(4, 20, 35.0, 17);
        let params = HierParams::experimental(Linkage::Single);
        for seed in 0..5u64 {
            let mut lazy = SharedCounting::new(scenario.probabilistic_oracle(0.05, 4000 + seed));
            let a = hier_oracle_par(&params, &mut lazy, &mut rng(seed), 1);
            let cached = CachedMetric::new(scenario.metric.clone());
            let mut opt = SharedCounting::new(ProbQuadOracle::new(&cached, 0.05, 4000 + seed));
            let b = hier_oracle_par(&params, &mut opt, &mut rng(seed), 4);
            assert_eq!(a, b, "dendrogram differs at seed {seed}");
            assert_eq!(lazy.queries(), opt.queries(), "query totals at seed {seed}");
        }
    }

    /// Round accounting through the fan-out merge plane: the
    /// counter-stream SLINK engine over a `SharedBudgeted` meter bills
    /// the identical (nonzero) round count at 1 and 4 workers across 20
    /// seeds — the fanned path's `note_round` is the per-round twin of
    /// `le_batch`'s `+1`.
    #[test]
    fn hier_oracle_par_round_accounting_matches_single_worker_across_20_seeds() {
        use nco_core::hier::hier_oracle_par;
        use nco_oracle::SharedBudgeted;
        let scenario = MetricScenario::separated_blobs(4, 16, 35.0, 13);
        let params = HierParams::experimental(Linkage::Single);
        for seed in 0..20u64 {
            let mut serial =
                SharedBudgeted::new(scenario.probabilistic_oracle(0.1, 7000 + seed), None);
            let a = hier_oracle_par(&params, &mut serial, &mut rng(seed), 1);
            let mut par =
                SharedBudgeted::new(scenario.probabilistic_oracle(0.1, 7000 + seed), None);
            let b = hier_oracle_par(&params, &mut par, &mut rng(seed), 4);
            assert_eq!(a, b, "dendrogram differs at seed {seed}");
            assert_eq!(serial.queries(), par.queries(), "queries at seed {seed}");
            assert!(serial.rounds() > 0, "no rounds metered at seed {seed}");
            assert_eq!(
                serial.rounds(),
                par.rounds(),
                "round totals differ at seed {seed}"
            );
        }
    }

    /// Count-Max itself: the scoring triangle fanned across threads.
    #[test]
    fn count_max_parallel_matches_serial() {
        let scenario = ValueScenario::shuffled_linear(120, 2);
        for seed in 0..20u64 {
            let mut serial_oracle = scenario.probabilistic_oracle(0.3, 6000 + seed);
            let mut serial_cmp = CountingCmp::new(ValueCmp::new(&mut serial_oracle));
            let serial = count_max(&scenario.items, &mut serial_cmp);
            let serial_calls = serial_cmp.calls();

            let par_oracle = scenario.probabilistic_oracle(0.3, 6000 + seed);
            let par_cmp = AtomicCountingCmp::new(SharedValueCmp::new(&par_oracle));
            let par = count_max_par(&scenario.items, &par_cmp, 4);

            assert_eq!(serial, par, "winner differs at seed {seed}");
            assert_eq!(
                serial_calls,
                par_cmp.calls(),
                "totals differ at seed {seed}"
            );
        }
    }
}
