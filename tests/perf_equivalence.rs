//! Equivalence guarantees behind the PR-2 performance work.
//!
//! Two families of checks:
//!
//! 1. **Memoisation is invisible.** Under every persistent noise model,
//!    an algorithm run over `MemoOracle<O>` must make bit-identical
//!    decisions to the same run over `O` — the persistent-noise property
//!    (Section 2.2) makes the cache semantically exact, and these tests
//!    pin that end to end (max-finding, farthest search, k-center,
//!    hierarchical clustering).
//! 2. **Parallel == serial.** With the `parallel` feature, the fan-out
//!    variants must return bit-identical outputs *and* identical
//!    comparator call totals across 20 seeds.

use nco_core::comparator::ValueCmp;
use nco_core::hier::{hier_oracle, HierParams, Linkage};
use nco_core::kcenter::{kcenter_adv, KCenterAdvParams};
use nco_core::maxfind::{max_adv, max_prob, AdvParams, ProbParams};
use nco_core::neighbor::{farthest_adv, nearest_adv};
use nco_oracle::memo::MemoOracle;
use nco_testkit::{MetricScenario, ValueScenario};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Count-Max-Prob over a memoised persistent probabilistic oracle returns
/// exactly what it returns over the raw oracle, for every seed.
#[test]
fn memo_is_bit_identical_for_max_prob() {
    let scenario = ValueScenario::shuffled_linear(300, 11);
    let params = ProbParams::experimental();
    for seed in 0..20u64 {
        let mut raw = scenario.probabilistic_oracle(0.2, 500 + seed);
        let mut memo = MemoOracle::new(scenario.probabilistic_oracle(0.2, 500 + seed));
        let a = max_prob(
            &scenario.items,
            &params,
            &mut ValueCmp::new(&mut raw),
            &mut rng(seed),
        );
        let b = max_prob(
            &scenario.items,
            &params,
            &mut ValueCmp::new(&mut memo),
            &mut rng(seed),
        );
        assert_eq!(a, b, "seed {seed}");
        assert!(memo.lookups() > 0, "memo must have been exercised");
    }
}

/// Max-Adv over a memoised adversarial oracle (worst-case in-band liar —
/// persistent because the strategy is a pure function of the query).
#[test]
fn memo_is_bit_identical_for_max_adv() {
    let scenario = ValueScenario::shuffled_geometric(256, 1.2, 3);
    let params = AdvParams::with_confidence(0.1);
    for seed in 0..20u64 {
        let mut raw = scenario.adversarial_oracle(0.5);
        let mut memo = MemoOracle::new(scenario.adversarial_oracle(0.5));
        let a = max_adv(
            &scenario.items,
            &params,
            &mut ValueCmp::new(&mut raw),
            &mut rng(900 + seed),
        );
        let b = max_adv(
            &scenario.items,
            &params,
            &mut ValueCmp::new(&mut memo),
            &mut rng(900 + seed),
        );
        assert_eq!(a, b, "seed {seed}");
    }
    // Same check under the persistent random in-band strategy.
    for seed in 0..5u64 {
        let mut raw = scenario.adversarial_random_oracle(0.5, 70 + seed);
        let mut memo = MemoOracle::new(scenario.adversarial_random_oracle(0.5, 70 + seed));
        let a = max_adv(
            &scenario.items,
            &params,
            &mut ValueCmp::new(&mut raw),
            &mut rng(40 + seed),
        );
        let b = max_adv(
            &scenario.items,
            &params,
            &mut ValueCmp::new(&mut memo),
            &mut rng(40 + seed),
        );
        assert_eq!(a, b, "random-adversary seed {seed}");
    }
}

/// Farthest/nearest neighbour search over a memoised quadruplet oracle.
#[test]
fn memo_is_bit_identical_for_neighbor_search() {
    let scenario = MetricScenario::separated_blobs(4, 40, 50.0, 17);
    let params = AdvParams::with_confidence(0.1);
    for seed in 0..10u64 {
        let mut raw = scenario.probabilistic_oracle(0.15, 60 + seed);
        let mut memo = MemoOracle::new(scenario.probabilistic_oracle(0.15, 60 + seed));
        let q = (seed as usize * 13) % scenario.n();
        assert_eq!(
            farthest_adv(&mut raw, q, &params, &mut rng(seed)),
            farthest_adv(&mut memo, q, &params, &mut rng(seed)),
            "farthest seed {seed}"
        );
        assert_eq!(
            nearest_adv(&mut raw, q, &params, &mut rng(1000 + seed)),
            nearest_adv(&mut memo, q, &params, &mut rng(1000 + seed)),
            "nearest seed {seed}"
        );
    }
}

/// k-center and the full SLINK hierarchy over memoised quadruplet oracles
/// (crowd noise included — the majority over persistent workers is itself
/// persistent).
#[test]
fn memo_is_bit_identical_for_kcenter_and_hierarchy() {
    let scenario = MetricScenario::separated_blobs(4, 20, 40.0, 23);
    for seed in 0..5u64 {
        let params = KCenterAdvParams::experimental(4);
        let mut raw = scenario.adversarial_oracle(0.3);
        let mut memo = MemoOracle::new(scenario.adversarial_oracle(0.3));
        let a = kcenter_adv(&params, &mut raw, &mut rng(300 + seed));
        let b = kcenter_adv(&params, &mut memo, &mut rng(300 + seed));
        assert_eq!(a.centers, b.centers, "kcenter centers seed {seed}");
        assert_eq!(a.assignment, b.assignment, "kcenter assignment seed {seed}");

        let hier_params = HierParams::experimental(Linkage::Single);
        let mut raw = scenario.probabilistic_oracle(0.1, 80 + seed);
        let mut memo = MemoOracle::new(scenario.probabilistic_oracle(0.1, 80 + seed));
        let da = hier_oracle(&hier_params, &mut raw, &mut rng(600 + seed));
        let db = hier_oracle(&hier_params, &mut memo, &mut rng(600 + seed));
        assert_eq!(da.merges, db.merges, "hierarchy seed {seed}");
        assert!(
            memo.hits() > 0,
            "SLINK revisits pairs; the cache must hit (seed {seed})"
        );
    }
}

#[cfg(feature = "parallel")]
mod parallel_equivalence {
    use super::*;
    use nco_core::maxfind::{count_max, count_max_par, max_prob_par, tournament, tournament_par};
    use nco_core::parallel::{AtomicCountingCmp, SharedValueCmp};
    use nco_testkit::CountingCmp;

    /// Count-Max-Prob: serial vs 4-thread fan-out across 20 seeds —
    /// bit-identical winners and identical comparator call totals.
    #[test]
    fn max_prob_parallel_matches_serial_across_20_seeds() {
        let scenario = ValueScenario::shuffled_linear(600, 5);
        let params = ProbParams::experimental();
        for seed in 0..20u64 {
            let mut serial_oracle = scenario.probabilistic_oracle(0.2, 2000 + seed);
            let mut serial_cmp = CountingCmp::new(ValueCmp::new(&mut serial_oracle));
            let serial = max_prob(&scenario.items, &params, &mut serial_cmp, &mut rng(seed));
            let serial_calls = serial_cmp.calls();

            let par_oracle = scenario.probabilistic_oracle(0.2, 2000 + seed);
            let par_cmp = AtomicCountingCmp::new(SharedValueCmp::new(&par_oracle));
            let par = max_prob_par(&scenario.items, &params, &par_cmp, &mut rng(seed), 4);

            assert_eq!(serial, par, "winner differs at seed {seed}");
            assert_eq!(
                serial_calls,
                par_cmp.calls(),
                "query totals differ at seed {seed}"
            );
        }
    }

    /// λ-ary tournament: serial vs fan-out for λ in {2, 3, 8}.
    #[test]
    fn tournament_parallel_matches_serial_across_20_seeds() {
        let scenario = ValueScenario::shuffled_linear(257, 9);
        for seed in 0..20u64 {
            for lambda in [2usize, 3, 8] {
                let mut serial_oracle = scenario.probabilistic_oracle(0.25, 4000 + seed);
                let mut serial_cmp = CountingCmp::new(ValueCmp::new(&mut serial_oracle));
                let serial = tournament(&scenario.items, lambda, &mut serial_cmp, &mut rng(seed));
                let serial_calls = serial_cmp.calls();

                let par_oracle = scenario.probabilistic_oracle(0.25, 4000 + seed);
                let par_cmp = AtomicCountingCmp::new(SharedValueCmp::new(&par_oracle));
                let par = tournament_par(&scenario.items, lambda, &par_cmp, &mut rng(seed), 4);

                assert_eq!(
                    serial, par,
                    "winner differs at seed {seed}, lambda {lambda}"
                );
                assert_eq!(
                    serial_calls,
                    par_cmp.calls(),
                    "query totals differ at seed {seed}, lambda {lambda}"
                );
            }
        }
    }

    /// Count-Max itself: the scoring triangle fanned across threads.
    #[test]
    fn count_max_parallel_matches_serial() {
        let scenario = ValueScenario::shuffled_linear(120, 2);
        for seed in 0..20u64 {
            let mut serial_oracle = scenario.probabilistic_oracle(0.3, 6000 + seed);
            let mut serial_cmp = CountingCmp::new(ValueCmp::new(&mut serial_oracle));
            let serial = count_max(&scenario.items, &mut serial_cmp);
            let serial_calls = serial_cmp.calls();

            let par_oracle = scenario.probabilistic_oracle(0.3, 6000 + seed);
            let par_cmp = AtomicCountingCmp::new(SharedValueCmp::new(&par_oracle));
            let par = count_max_par(&scenario.items, &par_cmp, 4);

            assert_eq!(serial, par, "winner differs at seed {seed}");
            assert_eq!(
                serial_calls,
                par_cmp.calls(),
                "totals differ at seed {seed}"
            );
        }
    }
}
