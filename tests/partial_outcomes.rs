//! Graceful degradation: killed runs surface typed `PartialOutcome`s
//! built from clean progress only. Budget kills are deterministic —
//! replaying the same session yields the same partial — and every
//! partial is a true prefix of what the completed run produces:
//! `TopPrefix` of the full top-k, `Committee` of the full center list,
//! `DendrogramPrefix` of the full merge sequence. Nearest/farthest carry
//! no partial, deadline/cancel kills are best-effort, and the serving
//! plane only attaches partials when `degrade_to_partials` opts in.

use nco_core::hier::Linkage;
use noisy_oracle::{
    CancelToken, NcoError, Noise, PartialOutcome, Request, Server, Session, SessionBuilder, Task,
};
use std::time::Duration;

fn values() -> Vec<f64> {
    (0..128).map(|i| ((i * 37) % 128) as f64).collect()
}

fn grid(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![(i % 17) as f64, (i * 7 % 23) as f64, (i * 13 % 29) as f64])
        .collect()
}

fn value_builder() -> SessionBuilder {
    Session::builder()
        .values(values())
        .noise(Noise::Probabilistic { p: 0.15, seed: 9 })
        .seed(9)
}

fn metric_builder() -> SessionBuilder {
    Session::builder()
        .points(&grid(64))
        .noise(Noise::Probabilistic { p: 0.15, seed: 9 })
        .seed(9)
}

/// Full-run query count for `task`, used to place budgets mid-run.
fn full_queries(builder: impl Fn() -> SessionBuilder, task: Task) -> u64 {
    builder().build().unwrap().run(task).unwrap().report.queries
}

/// Runs `task` under `budget` and returns the typed budget-kill pieces.
fn budget_kill(
    builder: impl Fn() -> SessionBuilder,
    task: Task,
    budget: u64,
) -> (Option<PartialOutcome>, u64) {
    let session = builder().budget(budget).build().unwrap();
    match session.run(task) {
        Err(NcoError::BudgetExceeded {
            budget: b,
            report,
            partial,
        }) => {
            assert_eq!(b, budget);
            assert!(report.queries <= budget, "never overspends the cap");
            (partial, report.queries)
        }
        other => panic!("budget {budget} must kill {task:?}, got {other:?}"),
    }
}

#[test]
fn budget_killed_topk_returns_a_prefix_of_the_full_answer() {
    let task = Task::TopK { k: 8 };
    let full = value_builder().build().unwrap().run(task).unwrap();
    let full_items = full.answer.items().unwrap();

    let budget = full.report.queries / 2;
    let (partial, _) = budget_kill(value_builder, task, budget);
    let Some(PartialOutcome::TopPrefix { items, requested }) = partial else {
        panic!("expected TopPrefix, got {partial:?}");
    };
    assert_eq!(requested, 8);
    assert!(
        !items.is_empty() && items.len() < 8,
        "mid-run kill: {items:?}"
    );
    assert_eq!(
        items,
        full_items[..items.len()],
        "partial must be a prefix of the completed extraction"
    );

    // Deterministic: the latch trips at an exact query count.
    let (replay, spent) = budget_kill(value_builder, task, budget);
    assert_eq!(replay, Some(PartialOutcome::TopPrefix { items, requested }));
    let (_, spent2) = budget_kill(value_builder, task, budget);
    assert_eq!(spent, spent2);
}

#[test]
fn budget_killed_kcenter_returns_a_committee_prefix() {
    let task = Task::KCenter { k: 6 };
    let full = metric_builder().build().unwrap().run(task).unwrap();
    let full_centers = &full.answer.clustering().unwrap().centers;

    let budget = full.report.queries * 4 / 5;
    let (partial, _) = budget_kill(metric_builder, task, budget);
    let Some(PartialOutcome::Committee { centers, requested }) = partial else {
        panic!("expected Committee, got {partial:?}");
    };
    assert_eq!(requested, 6);
    assert!(
        !centers.is_empty() && centers.len() < 6,
        "mid-run kill: {centers:?}"
    );
    assert_eq!(
        centers,
        full_centers[..centers.len()],
        "committee grows in selection order, so a kill leaves a prefix"
    );

    let (replay, _) = budget_kill(metric_builder, task, budget);
    assert_eq!(
        replay,
        Some(PartialOutcome::Committee { centers, requested })
    );
}

#[test]
fn budget_killed_hierarchy_returns_a_merge_prefix() {
    let task = Task::Hierarchy {
        linkage: Linkage::Single,
    };
    let full = metric_builder().build().unwrap().run(task).unwrap();
    let full_merges = &full.answer.dendrogram().unwrap().merges;
    assert_eq!(full_merges.len(), 63);

    let budget = full.report.queries * 4 / 5;
    let (partial, _) = budget_kill(metric_builder, task, budget);
    let Some(PartialOutcome::DendrogramPrefix {
        n,
        merges,
        expected,
    }) = partial
    else {
        panic!("expected DendrogramPrefix, got {partial:?}");
    };
    assert_eq!((n, expected), (64, 63));
    assert!(
        !merges.is_empty() && merges.len() < 63,
        "mid-run kill: {} merges",
        merges.len()
    );
    assert_eq!(
        merges,
        full_merges[..merges.len()],
        "replaying the partial must walk the exact same agglomeration"
    );

    let (replay, _) = budget_kill(metric_builder, task, budget);
    assert_eq!(
        replay,
        Some(PartialOutcome::DendrogramPrefix {
            n,
            merges,
            expected
        })
    );
}

#[test]
fn budget_killed_sort_returns_a_sorted_prefix_of_the_full_ranking() {
    let task = Task::Sort;
    let full = value_builder().build().unwrap().run(task).unwrap();
    let full_ranking = full.answer.ranking().unwrap();

    // Kill inside the emit sweep: the clean watermark is non-trivial.
    let budget = full.report.queries - 1;
    let (partial, _) = budget_kill(value_builder, task, budget);
    let Some(PartialOutcome::SortedPrefix { items, n }) = partial else {
        panic!("expected SortedPrefix, got {partial:?}");
    };
    assert_eq!(n, 128);
    assert!(
        !items.is_empty() && items.len() < n,
        "mid-sweep kill: {} committed",
        items.len()
    );
    assert_eq!(
        items,
        full_ranking[..items.len()],
        "committed positions are never touched again, so the killed \
         prefix is bit-identical to the completed run's prefix"
    );

    let (replay, spent) = budget_kill(value_builder, task, budget);
    assert_eq!(replay, Some(PartialOutcome::SortedPrefix { items, n }));
    let (_, spent2) = budget_kill(value_builder, task, budget);
    assert_eq!(spent, spent2);

    // A kill before the emit sweep still types the partial, with an
    // empty (nothing committed yet) prefix allowed.
    let (early, _) = budget_kill(value_builder, task, full.report.queries / 10);
    let Some(PartialOutcome::SortedPrefix { items, n }) = early else {
        panic!("expected SortedPrefix, got {early:?}");
    };
    assert_eq!(n, 128);
    assert!(items.len() < n);
}

#[test]
fn budget_killed_select_and_partition_confirm_a_prefix_of_the_top() {
    let k = 8usize;
    let full = value_builder()
        .build()
        .unwrap()
        .run(Task::Partition { k })
        .unwrap();
    let (full_top, _) = full.answer.partition().unwrap();

    // Select and Partition share one narrowing engine, so both kills
    // surface the same PivotCandidate shape against the same top. A kill
    // inside the resolving scan (budget q-1) lands after the narrowing
    // watermark committed, so the boundary estimate survives; an early
    // kill still types the partial but may predate any commitment.
    for task in [Task::Select { k }, Task::Partition { k }] {
        let q = full_queries(value_builder, task);
        let (late, _) = budget_kill(value_builder, task, q - 1);
        let Some(PartialOutcome::PivotCandidate {
            candidate,
            confirmed,
            requested,
        }) = late
        else {
            panic!("expected PivotCandidate, got {late:?}");
        };
        assert_eq!(requested, k);
        assert!(candidate.is_some(), "{task:?}: late kill has a boundary");
        assert!(confirmed.len() < k, "{task:?}: kill precedes the full top");
        assert_eq!(
            confirmed,
            full_top[..confirmed.len()],
            "{task:?}: confirmed items are a prefix of the completed top"
        );

        let (replay, _) = budget_kill(value_builder, task, q - 1);
        assert_eq!(
            replay,
            Some(PartialOutcome::PivotCandidate {
                candidate,
                confirmed,
                requested
            })
        );

        let (early, _) = budget_kill(value_builder, task, q / 2);
        let Some(PartialOutcome::PivotCandidate { confirmed, .. }) = early else {
            panic!("expected PivotCandidate, got {early:?}");
        };
        assert_eq!(
            confirmed,
            full_top[..confirmed.len()],
            "{task:?}: even an early kill only ever confirms a true prefix"
        );
    }
}

#[test]
fn budget_killed_max_reports_its_leader() {
    let task = Task::Max;
    let q = full_queries(value_builder, task);
    // Early kills may precede the first committed round (no leader yet);
    // a late kill must carry one.
    let (early, _) = budget_kill(value_builder, task, q / 10);
    assert!(matches!(early, Some(PartialOutcome::Leader { .. })));
    let (late, _) = budget_kill(value_builder, task, q * 9 / 10);
    let Some(PartialOutcome::Leader {
        candidate: Some(leader),
    }) = late
    else {
        panic!("a 90% budget kill must have a committed leader, got {late:?}");
    };
    assert!(leader < 128);
    let (replay, _) = budget_kill(value_builder, task, q * 9 / 10);
    assert_eq!(
        replay,
        Some(PartialOutcome::Leader {
            candidate: Some(leader)
        })
    );
}

#[test]
fn nearest_and_farthest_carry_no_partial() {
    for task in [Task::Nearest { q: 0 }, Task::Farthest { q: 0 }] {
        let q = full_queries(metric_builder, task);
        let (partial, spent) = budget_kill(metric_builder, task, q / 2);
        assert_eq!(partial, None, "{task:?} has no intermediate commitment");
        assert!(spent > 0, "the bill survives even without a partial");
    }
}

#[test]
fn cancelled_and_deadlined_runs_degrade_gracefully() {
    // A pre-cancelled token kills at the first boundary: typed error,
    // spend preserved, partial (if any) shape-valid.
    let token = CancelToken::new();
    token.cancel();
    let session = metric_builder().cancel_token(token).build().unwrap();
    match session.run(Task::Hierarchy {
        linkage: Linkage::Single,
    }) {
        Err(NcoError::DeadlineExceeded { report, partial }) => {
            if let Some(p) = &partial {
                let progress = p.progress();
                assert!((0.0..=1.0).contains(&progress));
                assert!(matches!(p, PartialOutcome::DendrogramPrefix { .. }));
            }
            assert!(report.queries <= 1, "cancelled before real work");
        }
        other => panic!("expected a cancel kill, got {other:?}"),
    }

    // An already-expired deadline behaves the same way.
    let session = metric_builder().deadline(Duration::ZERO).build().unwrap();
    match session.run(Task::KCenter { k: 6 }) {
        Err(NcoError::DeadlineExceeded { partial, .. }) => {
            if let Some(p) = partial {
                assert!(matches!(p, PartialOutcome::Committee { .. }));
            }
        }
        other => panic!("expected a deadline kill, got {other:?}"),
    }
}

#[test]
fn served_requests_degrade_to_partials_only_when_asked() {
    let task = Task::Hierarchy {
        linkage: Linkage::Single,
    };
    let solo_q = full_queries(metric_builder, task);
    let budget = solo_q * 4 / 5;
    let (solo_partial, _) = budget_kill(metric_builder, task, budget);
    assert!(solo_partial.is_some());

    let run = |degrade: bool| {
        let template = metric_builder().budget(budget).build().unwrap();
        let server = Server::builder(template)
            .workers(1)
            .degrade_to_partials(degrade)
            .build()
            .unwrap();
        let result = server.submit(Request { task, seed: 9 }).unwrap().join();
        (result, server.shutdown())
    };

    // Opted in: the served kill carries the exact solo partial and the
    // server counts the degraded completion.
    let (result, stats) = run(true);
    match result {
        Err(NcoError::BudgetExceeded { partial, .. }) => {
            assert_eq!(partial, solo_partial, "served partial == solo partial");
        }
        other => panic!("expected a budget kill, got {other:?}"),
    }
    assert_eq!(stats.partial_completions, 1);

    // Default: same typed error, lean payload, no degraded completions.
    let (result, stats) = run(false);
    match result {
        Err(NcoError::BudgetExceeded { partial, .. }) => assert_eq!(partial, None),
        other => panic!("expected a budget kill, got {other:?}"),
    }
    assert_eq!(stats.partial_completions, 0);
}
