//! The adaptive noise plane, end to end: online probe estimates converge
//! to the true flip rate (and agree with the offline Section 6 fit),
//! probe-off sessions are bit-identical to sessions without the layer,
//! probes are billed but never perturb answers, the misspecification
//! guard fails typed with spend preserved, and `AdaptPolicy::Escalate`
//! recovers the completions (and the answer quality) that fixed-rate
//! sessions lose when the real noise is twice the configured one.

use noisy_oracle::eval::noise_fit::{fit_noise, FittedModel};
use noisy_oracle::metric::EuclideanMetric;
use noisy_oracle::oracle::crowd::AccuracyProfile;
use noisy_oracle::oracle::probabilistic::ProbQuadOracle;
use noisy_oracle::{AdaptPolicy, NcoError, Noise, Outcome, RunReport, Session, Task};

const SEEDS: u64 = 20;

fn grid(n: usize) -> Vec<Vec<f64>> {
    (0..n)
        .map(|i| vec![(i % 17) as f64, (i * 7 % 23) as f64, (i * 13 % 29) as f64])
        .collect()
}

/// The report fields a probe layer is allowed to change (`queries`,
/// `rounds`, `probes`, `observed_flip_rate`) plus the ones it must not —
/// one comparable bundle for bit-identity pins.
fn fingerprint(o: &Outcome) -> (Option<usize>, u64, u64, Option<u64>, Option<u64>, u32) {
    let RunReport {
        queries,
        rounds,
        memo_hits,
        probes,
        adaptations,
        ..
    } = o.report;
    (
        o.answer.item(),
        queries,
        rounds,
        memo_hits,
        probes,
        adaptations,
    )
}

// ---------------------------------------------------------------------
// Estimator correctness.
// ---------------------------------------------------------------------

#[test]
fn probe_estimates_converge_to_the_configured_rate() {
    let values: Vec<f64> = (1..=400).map(f64::from).collect();
    let p = 0.30;
    let mut sum = 0.0;
    for seed in 0..SEEDS {
        let session = Session::builder()
            .values(values.clone())
            .noise(Noise::Probabilistic { p, seed })
            .probe_noise(0.10)
            .seed(seed)
            .build()
            .unwrap();
        let o = session.run(Task::Max).unwrap();
        let est = o
            .report
            .observed_flip_rate
            .expect("probing fills the estimate");
        let probes = o.report.probes.expect("probing bills probes");
        assert!(probes > 0 && probes % 3 == 0, "three asks per triangle");
        assert!(o.report.queries > probes, "probes ride a real query stream");
        assert!(
            (est - p).abs() < 0.06,
            "seed {seed}: estimate {est:.4} strayed from p = {p} ({probes} probes)"
        );
        sum += est;
    }
    let mean = sum / SEEDS as f64;
    assert!(
        (mean - p).abs() < 0.015,
        "mean estimate {mean:.4} is biased away from p = {p}"
    );
}

#[test]
fn probe_estimates_track_the_crowd_effective_rate() {
    // amazon-like accuracy is flat in the distance ratio, so a
    // majority-of-3 crowd flips at ~0.077 regardless of what is asked:
    // that effective rate — not the single-worker one — is what the
    // triangles must see.
    let points = grid(96);
    let effective = 0.077;
    let mut sum = 0.0;
    for seed in 0..SEEDS {
        let session = Session::builder()
            .points(&points)
            .noise(Noise::Crowd {
                profile: AccuracyProfile::amazon_like(),
                workers: 3,
                seed,
            })
            .probe_noise(0.15)
            .seed(seed)
            .build()
            .unwrap();
        let o = session.run(Task::KCenter { k: 5 }).unwrap();
        let est = o
            .report
            .observed_flip_rate
            .expect("quad probing fills the estimate");
        assert!(
            (0.05..=0.11).contains(&est),
            "seed {seed}: crowd estimate {est:.4} far from effective rate {effective}"
        );
        sum += est;
    }
    let mean = sum / SEEDS as f64;
    assert!(
        (mean - effective).abs() < 0.015,
        "mean crowd estimate {mean:.4} vs effective {effective}"
    );
}

#[test]
fn online_estimate_agrees_with_the_offline_fit() {
    // The Section 6 offline fit and the live probe plane measure the
    // same quantity two different ways; on the same persistent noise
    // they must land on the same rate.
    let points = grid(80);
    let p = 0.20;
    let metric = EuclideanMetric::from_points(&points);
    let mut oracle = ProbQuadOracle::new(metric.clone(), p, 5);
    let offline = match fit_noise(&metric, &mut oracle, 30_000, 5).model {
        FittedModel::Probabilistic { p_hat } => p_hat,
        other => panic!("persistent flat noise must fit probabilistic, got {other:?}"),
    };

    let session = Session::builder()
        .points(&points)
        .noise(Noise::Probabilistic { p, seed: 5 })
        .probe_noise(0.20)
        .seed(5)
        .build()
        .unwrap();
    let online = session
        .run(Task::KCenter { k: 4 })
        .unwrap()
        .report
        .observed_flip_rate
        .unwrap();

    assert!((offline - p).abs() < 0.05, "offline fit {offline:.4}");
    assert!((online - p).abs() < 0.05, "online estimate {online:.4}");
    assert!(
        (online - offline).abs() < 0.05,
        "online {online:.4} and offline {offline:.4} disagree"
    );
}

// ---------------------------------------------------------------------
// Bit-identity and billing.
// ---------------------------------------------------------------------

#[test]
fn probe_off_sessions_are_bit_identical_to_unprobed_sessions() {
    // `probe_noise(0.0)` must be indistinguishable from never calling
    // it: same answer, same meters, no estimate, no probe bill.
    let values: Vec<f64> = (0..200).map(|i| ((i * 53) % 200) as f64).collect();
    for seed in 0..SEEDS {
        let base = Session::builder()
            .values(values.clone())
            .noise(Noise::Probabilistic { p: 0.25, seed })
            .seed(seed)
            .build()
            .unwrap();
        let off = Session::builder()
            .values(values.clone())
            .noise(Noise::Probabilistic { p: 0.25, seed })
            .probe_noise(0.0)
            .seed(seed)
            .build()
            .unwrap();
        let b = base.run(Task::Max).unwrap();
        let o = off.run(Task::Max).unwrap();
        assert_eq!(fingerprint(&b), fingerprint(&o), "seed {seed}");
        assert_eq!(b.report.observed_flip_rate, None);
        assert_eq!(o.report.observed_flip_rate, None);
    }
}

#[test]
fn probes_are_billed_but_never_perturb_answers() {
    // Persistent noise: extra probe queries cannot change any real
    // answer, so a probed run returns the unprobed answer and pays for
    // its triangles on top. Probing is also deterministic — the same
    // configuration replays to the same report.
    let points = grid(64);
    for seed in 0..SEEDS {
        let build = |rate: f64| {
            let mut b = Session::builder()
                .points(&points)
                .noise(Noise::Probabilistic { p: 0.2, seed })
                .seed(seed);
            if rate > 0.0 {
                b = b.probe_noise(rate);
            }
            b.build().unwrap()
        };
        let plain = build(0.0).run(Task::Farthest { q: 1 }).unwrap();
        let probed = build(0.25).run(Task::Farthest { q: 1 }).unwrap();
        assert_eq!(
            plain.answer, probed.answer,
            "seed {seed}: probes changed the answer"
        );
        let probes = probed.report.probes.unwrap();
        assert!(probes > 0, "seed {seed}: rate 0.25 must fire");
        assert!(
            probed.report.queries > plain.report.queries
                && probed.report.queries <= plain.report.queries + probes,
            "seed {seed}: probe bill out of range ({} vs {} + {probes})",
            probed.report.queries,
            plain.report.queries,
        );

        let replay = build(0.25).run(Task::Farthest { q: 1 }).unwrap();
        assert_eq!(fingerprint(&probed), fingerprint(&replay));
        assert_eq!(
            probed.report.observed_flip_rate,
            replay.report.observed_flip_rate
        );
    }
}

// ---------------------------------------------------------------------
// The guard and the recovery.
// ---------------------------------------------------------------------

#[test]
fn misspecification_fails_typed_with_spend_preserved() {
    // True rate twice the assumed one: with ~2000 triangles the CI
    // lower bound clears 0.15 on every seed, so every guarded session
    // fails typed — and keeps its bill.
    let values: Vec<f64> = (1..=256).map(f64::from).collect();
    for seed in 0..SEEDS {
        let session = Session::builder()
            .values(values.clone())
            .noise(Noise::Probabilistic { p: 0.30, seed })
            .assume_noise_rate(0.15)
            .probe_noise(0.10)
            .seed(seed)
            .build()
            .unwrap();
        match session.run(Task::Max) {
            Err(NcoError::NoiseMisspecified {
                assumed,
                observed,
                probes,
                report,
            }) => {
                assert_eq!(assumed, 0.15);
                assert!(observed > 0.2, "seed {seed}: observed {observed:.4}");
                assert!(probes > 0 && probes % 3 == 0);
                assert!(report.queries > probes, "spend preserved beyond the probes");
                assert_eq!(report.probes, Some(probes));
                assert_eq!(report.adaptations, 0);
            }
            other => panic!("seed {seed}: expected NoiseMisspecified, got {other:?}"),
        }
    }

    // `AdaptPolicy::FailFast` is the same guard, requested explicitly.
    let session = Session::builder()
        .values(values)
        .noise(Noise::Probabilistic { p: 0.30, seed: 0 })
        .assume_noise_rate(0.15)
        .probe_noise(0.10)
        .adapt_noise(AdaptPolicy::FailFast)
        .seed(0)
        .build()
        .unwrap();
    assert!(matches!(
        session.run(Task::Max),
        Err(NcoError::NoiseMisspecified { .. })
    ));
}

#[test]
fn adaptive_sessions_recover_what_fixed_sessions_lose() {
    // The headline pin: real flip rate 0.40, configured 0.20. Guarded
    // fixed sessions complete 0/20 (all fail typed); adaptive sessions
    // complete 20/20 with exactly one re-derivation each — and their
    // answers are measurably better than the silently-misspecified
    // fixed sessions that never probed.
    let n = 256usize;
    let values: Vec<f64> = (1..=n as u32).map(f64::from).collect();
    let p = 0.40;
    let assumed = 0.20;
    let mk = |seed: u64, probe: bool, adapt: bool| {
        let mut b = Session::builder()
            .values(values.clone())
            .noise(Noise::Probabilistic { p, seed })
            .assume_noise_rate(assumed)
            .seed(seed);
        if probe {
            b = b.probe_noise(0.10);
        }
        if adapt {
            b = b.adapt_noise(AdaptPolicy::Escalate);
        }
        b.build().unwrap()
    };

    let mut guarded_completions = 0u32;
    let mut fixed_deficit = 0usize;
    let mut adaptive_deficit = 0usize;
    for seed in 0..SEEDS {
        // Guarded but not adaptive: the guard takes the answer away.
        if mk(seed, true, false).run(Task::Max).is_ok() {
            guarded_completions += 1;
        }

        // Silently misspecified: completes, but on parameters derived
        // for half the real rate.
        let fixed = mk(seed, false, false).run(Task::Max).unwrap();
        fixed_deficit += n - 1 - fixed.answer.item().unwrap();

        // Adaptive: probes, detects, re-derives, re-runs, completes.
        let adaptive = mk(seed, true, true).run(Task::Max).unwrap();
        assert_eq!(adaptive.report.adaptations, 1, "seed {seed}");
        assert!(adaptive.report.probes.unwrap() > 0);
        adaptive_deficit += n - 1 - adaptive.answer.item().unwrap();
    }

    assert_eq!(
        guarded_completions, 0,
        "at 2x the assumed rate every guarded fixed session must fail typed"
    );
    assert!(
        adaptive_deficit * 4 < fixed_deficit * 3,
        "adaptation must claw back answer quality: adaptive rank deficit \
         {adaptive_deficit} vs fixed {fixed_deficit} over {SEEDS} seeds"
    );
}

// ---------------------------------------------------------------------
// The serving plane's adaptive surface.
// ---------------------------------------------------------------------

#[test]
fn serving_plane_meters_probes_and_adaptations() {
    use noisy_oracle::{Request, Server};

    let values: Vec<f64> = (1..=128).map(f64::from).collect();
    let adaptive_template = Session::builder()
        .values(values.clone())
        .noise(Noise::Probabilistic { p: 0.40, seed: 9 })
        .assume_noise_rate(0.20)
        .probe_noise(0.10)
        .adapt_noise(AdaptPolicy::Escalate)
        .build()
        .unwrap();
    let server = Server::builder(adaptive_template)
        .workers(2)
        .build()
        .unwrap();
    let handles: Vec<_> = (0..3)
        .map(|seed| {
            server
                .submit(Request {
                    task: Task::Max,
                    seed,
                })
                .unwrap()
        })
        .collect();
    for h in handles {
        let o = h.join().expect("adaptive requests complete");
        assert_eq!(o.report.adaptations, 1);
        assert!(o.report.probes.unwrap() > 0);
        assert!(o.report.observed_flip_rate.unwrap() > 0.3);
    }
    let stats = server.shutdown();
    assert_eq!(stats.completed, 3);
    assert!(stats.probes > 0, "probe bills aggregate across requests");
    assert_eq!(stats.adaptations, 3);
    assert_eq!(stats.misspecifications, 0);

    // The same template without the adaptive policy: the guard fires
    // per request and the server counts it.
    let guarded_template = Session::builder()
        .values(values)
        .noise(Noise::Probabilistic { p: 0.40, seed: 9 })
        .assume_noise_rate(0.20)
        .probe_noise(0.10)
        .build()
        .unwrap();
    let server = Server::builder(guarded_template)
        .workers(2)
        .build()
        .unwrap();
    let handles: Vec<_> = (0..2)
        .map(|seed| {
            server
                .submit(Request {
                    task: Task::Max,
                    seed,
                })
                .unwrap()
        })
        .collect();
    for h in handles {
        match h.join() {
            Err(NcoError::NoiseMisspecified { assumed, .. }) => assert_eq!(assumed, 0.20),
            other => panic!("expected the guard, got {other:?}"),
        }
    }
    let stats = server.shutdown();
    assert_eq!(stats.misspecifications, 2);
    assert_eq!(stats.adaptations, 0);
}
