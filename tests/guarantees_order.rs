//! Guarantee suite for the ordering subsystem (`Task::Sort` /
//! `Task::Select` / `Task::Partition` through the `Session` front door).
//!
//! Three families of pins, each over a 20-seed block:
//!
//! * **exact-oracle correctness** — with `Noise::Exact` a sort is exactly
//!   the descending order, a select is exactly the k-th largest, and a
//!   partition is exactly the top-k set with the k-th item last;
//! * **bounded dislocation under noise** — probabilistic-persistent and
//!   crowd oracles keep every item within `O(sqrt(n log n))` of its true
//!   position (the noisy-sorting quality measure), and select/partition
//!   land within the same band of the requested boundary;
//! * **determinism** — repeated seeded runs are bit-identical in answer,
//!   partial shape and query count, under every noise model.

use noisy_oracle::eval::rank::{kendall_tau, max_dislocation};
use noisy_oracle::oracle::crowd::AccuracyProfile;
use noisy_oracle::{Noise, Session, Task};

const SEEDS: u64 = 20;
const P: f64 = 0.15;
const WORKERS: u32 = 3;

fn values(n: usize) -> Vec<f64> {
    // A scrambled permutation of 1..=n — distinct, order-hostile.
    (0..n).map(|i| 1.0 + ((i * 193) % n) as f64).collect()
}

fn session(vals: &[f64], noise: Noise, seed: u64) -> Session {
    Session::builder()
        .values(vals.to_vec())
        .noise(noise)
        .seed(seed)
        .build()
        .unwrap()
}

/// Descending order of `vals` by index — the ground truth ranking.
fn true_ranking(vals: &[f64]) -> Vec<usize> {
    let mut order: Vec<usize> = (0..vals.len()).collect();
    order.sort_by(|&a, &b| vals[b].partial_cmp(&vals[a]).unwrap());
    order
}

/// The dislocation band every noisy run must stay inside. Generous on
/// purpose: the engines aim well under it, and the pin is "bounded",
/// not "optimal".
fn dislocation_bound(n: usize) -> usize {
    (4.0 * (n as f64 * (n as f64).ln()).sqrt()) as usize
}

#[test]
fn exact_oracle_sort_is_exact_across_seeds() {
    let vals = values(180);
    let want = true_ranking(&vals);
    for seed in 0..SEEDS {
        let outcome = session(&vals, Noise::Exact, seed).run(Task::Sort).unwrap();
        let got = outcome.answer.ranking().unwrap();
        assert_eq!(got, &want[..], "seed {seed}");
        assert_eq!(kendall_tau(&vals, got), 0, "seed {seed}");
    }
}

#[test]
fn exact_oracle_select_is_the_true_kth_across_seeds() {
    let vals = values(150);
    let want = true_ranking(&vals);
    for seed in 0..SEEDS {
        for k in [1usize, 2, 75, 149, 150] {
            let outcome = session(&vals, Noise::Exact, seed)
                .run(Task::Select { k })
                .unwrap();
            assert_eq!(
                outcome.answer.item(),
                Some(want[k - 1]),
                "seed {seed}, k {k}"
            );
        }
    }
}

#[test]
fn exact_oracle_partition_is_the_true_topk_set_across_seeds() {
    let vals = values(150);
    let want = true_ranking(&vals);
    for seed in 0..SEEDS {
        for k in [1usize, 10, 149] {
            let outcome = session(&vals, Noise::Exact, seed)
                .run(Task::Partition { k })
                .unwrap();
            let (top, rest) = outcome.answer.partition().unwrap();
            assert_eq!(top.len(), k);
            assert_eq!(top.len() + rest.len(), vals.len());
            let mut top_sorted = top.to_vec();
            top_sorted.sort_unstable();
            let mut want_sorted = want[..k].to_vec();
            want_sorted.sort_unstable();
            assert_eq!(top_sorted, want_sorted, "seed {seed}, k {k}");
            // The boundary item — resolved by the exact round-robin scan
            // — is exactly the k-th largest.
            assert_eq!(top.last(), Some(&want[k - 1]), "seed {seed}, k {k}");
        }
    }
}

#[test]
fn sort_dislocation_is_bounded_under_probabilistic_noise() {
    let n = 256;
    let vals = values(n);
    let bound = dislocation_bound(n);
    for seed in 0..SEEDS {
        let noise = Noise::Probabilistic {
            p: P,
            seed: 5000 + seed,
        };
        let outcome = session(&vals, noise, seed).run(Task::Sort).unwrap();
        let got = outcome.answer.ranking().unwrap();
        let worst = max_dislocation(&vals, got);
        assert!(worst <= bound, "seed {seed}: dislocation {worst} > {bound}");
    }
}

#[test]
fn sort_dislocation_is_bounded_under_crowd_noise() {
    let n = 192;
    let vals = values(n);
    let bound = dislocation_bound(n);
    for seed in 0..SEEDS {
        let noise = Noise::Crowd {
            profile: AccuracyProfile::caltech_like(),
            workers: WORKERS,
            seed: 6000 + seed,
        };
        let outcome = session(&vals, noise, seed).run(Task::Sort).unwrap();
        let got = outcome.answer.ranking().unwrap();
        let worst = max_dislocation(&vals, got);
        assert!(worst <= bound, "seed {seed}: dislocation {worst} > {bound}");
    }
}

#[test]
fn select_lands_near_the_boundary_under_noise() {
    let n = 256;
    let vals = values(n);
    let want = true_ranking(&vals);
    let band = dislocation_bound(n);
    let k = n / 4;
    for seed in 0..SEEDS {
        for noise in [
            Noise::Probabilistic {
                p: P,
                seed: 7000 + seed,
            },
            Noise::Crowd {
                profile: AccuracyProfile::caltech_like(),
                workers: WORKERS,
                seed: 7000 + seed,
            },
        ] {
            let outcome = session(&vals, noise, seed).run(Task::Select { k }).unwrap();
            let got = outcome.answer.item().unwrap();
            // True 0-based rank of the returned item.
            let rank = want.iter().position(|&i| i == got).unwrap();
            assert!(
                rank.abs_diff(k - 1) <= band,
                "seed {seed} ({noise:?}): rank {rank} not within {band} of {}",
                k - 1
            );
        }
    }
}

/// Bit-determinism of every order task under every noise model: same
/// session config, same seed — same answer, same partial, same meters.
#[test]
fn order_runs_are_bit_deterministic_across_replays() {
    let vals = values(128);
    let noises = |seed: u64| {
        vec![
            Noise::Exact,
            Noise::Adversarial { mu: 0.4 },
            Noise::Probabilistic {
                p: P,
                seed: 8000 + seed,
            },
            Noise::Crowd {
                profile: AccuracyProfile::caltech_like(),
                workers: WORKERS,
                seed: 8000 + seed,
            },
        ]
    };
    for seed in [0u64, 3, 11] {
        for noise in noises(seed) {
            for task in [Task::Sort, Task::Select { k: 9 }, Task::Partition { k: 9 }] {
                let a = session(&vals, noise, seed).run(task).unwrap();
                let b = session(&vals, noise, seed).run(task).unwrap();
                assert_eq!(
                    a.answer, b.answer,
                    "answer replay diverged ({task:?}, {noise:?}, seed {seed})"
                );
                assert_eq!(
                    a.report.queries, b.report.queries,
                    "query replay diverged ({task:?}, {noise:?}, seed {seed})"
                );
                assert_eq!(
                    a.report.rounds, b.report.rounds,
                    "round replay diverged ({task:?}, {noise:?}, seed {seed})"
                );
            }
        }
    }
}

/// The ordering engines are batched: a full sort must spend far fewer
/// oracle rounds than queries (the round meter counts `le_batch` calls),
/// which is the BMW-style round-accounting pin.
#[test]
fn order_tasks_coalesce_queries_into_rounds() {
    let vals = values(256);
    for task in [Task::Sort, Task::Select { k: 32 }] {
        let outcome = session(&vals, Noise::Probabilistic { p: P, seed: 9100 }, 9)
            .run(task)
            .unwrap();
        let queries = outcome.report.queries;
        let rounds = outcome.report.rounds;
        assert!(queries > 0 && rounds > 0, "{task:?} issued no work");
        assert!(
            rounds * 8 <= queries,
            "{task:?}: {rounds} rounds for {queries} queries — not coalescing"
        );
    }
}
